package dctcp

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/netem"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("dctcp", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaTracksMarkFraction(t *testing.T) {
	d := New(cc.Config{})
	d.ssthresh = 0 // CA
	delivered := int64(0)
	// 50% of bytes marked, long enough for the EWMA to converge.
	for i := 0; i < 4000; i++ {
		delivered += 1500
		d.OnAck(&cc.Ack{Acked: 1500, Delivered: delivered, ECE: i%2 == 0})
	}
	if d.Alpha() < 0.3 || d.Alpha() > 0.7 {
		t.Fatalf("alpha %v for 50%% marking", d.Alpha())
	}
}

func TestGentleCutProportionalToAlpha(t *testing.T) {
	d := New(cc.Config{})
	d.ssthresh = 0
	d.cwnd = 100 * 1500
	d.alpha = 0.1
	d.windowEnd = 0
	// A window with marks at low alpha cuts by ~alpha/2 = 5%.
	d.OnAck(&cc.Ack{Acked: 1500, Delivered: 1, ECE: true})
	if d.Window() < 90*1500 {
		t.Fatalf("low-alpha cut too deep: %v", d.Window())
	}
}

func TestFullThroughputLowQueueWithECN(t *testing.T) {
	// Datacenter-style: 100 Mbps, 1 ms RTT, marking at ~32 KB.
	n := netem.New(netem.Config{
		Capacity:     trace.Constant(trace.Mbps(100)),
		MinRTT:       time.Millisecond,
		BufferBytes:  500_000,
		ECNThreshold: 32_000,
		Seed:         1,
	})
	f := n.AddFlow(New(cc.Config{}), 0, 0)
	n.Run(5 * time.Second)
	if u := n.Utilization(5 * time.Second); u < 0.85 {
		t.Fatalf("DCTCP utilization %.3f", u)
	}
	// Queue should hover near the threshold: 32KB at 100 Mbps = 2.6 ms.
	if f.Stats.AvgRTT() > 6*time.Millisecond {
		t.Fatalf("DCTCP avg RTT %v: queue not held at threshold", f.Stats.AvgRTT())
	}
	if n.Link().DropStats().Marked == 0 {
		t.Fatal("no packets were CE-marked")
	}
}

func TestECNDisabledMeansNoMarks(t *testing.T) {
	n := netem.New(netem.Config{
		Capacity:    trace.Constant(trace.Mbps(20)),
		MinRTT:      10 * time.Millisecond,
		BufferBytes: 50_000,
		Seed:        1,
	})
	n.AddFlow(New(cc.Config{}), 0, 0)
	n.Run(3 * time.Second)
	if n.Link().DropStats().Marked != 0 {
		t.Fatal("marks without ECN threshold")
	}
}

func TestTimeoutCollapse(t *testing.T) {
	d := New(cc.Config{})
	d.cwnd = 100 * 1500
	d.OnLoss(&cc.Loss{Timeout: true, Lost: 1500})
	if d.Window() != 2*1500 {
		t.Fatalf("timeout window %v", d.Window())
	}
}

func TestTwoDCTCPFlowsShareFairly(t *testing.T) {
	n := netem.New(netem.Config{
		Capacity:     trace.Constant(trace.Mbps(100)),
		MinRTT:       time.Millisecond,
		BufferBytes:  500_000,
		ECNThreshold: 32_000,
		Seed:         3,
	})
	f1 := n.AddFlow(New(cc.Config{}), 0, 0)
	f2 := n.AddFlow(New(cc.Config{}), 0, 0)
	n.Run(5 * time.Second)
	a, b := f1.Stats.AvgThroughput(), f2.Stats.AvgThroughput()
	share := a / (a + b)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("DCTCP flows split %.2f/%.2f", share, 1-share)
	}
}
