// Package dctcp implements DCTCP (Alizadeh et al., SIGCOMM 2010):
// datacenter congestion control that scales its multiplicative decrease
// by the measured fraction of ECN-marked packets, keeping queues at the
// marking threshold with full throughput. The paper's Sec. 7 proposes
// swapping Libra's classic component for a datacenter CCA "to leverage
// new properties (e.g., ECN marking)"; internal/core integrates this
// package via the generic window adapter (D-Libra).
package dctcp

import (
	"math"
	"time"

	"libra/internal/cc"
)

// g is DCTCP's EWMA gain for the marked fraction (the paper's 1/16).
const g = 1.0 / 16

// DCTCP is the controller. Construct with New.
type DCTCP struct {
	cfg cc.Config
	mss float64

	cwnd     float64
	ssthresh float64

	// Per-window ECN accounting.
	ackedBytes  int
	markedBytes int
	windowEnd   int64 // delivered marker closing the current observation window
	alpha       float64

	lastCut time.Duration
}

// New returns a DCTCP controller.
func New(cfg cc.Config) *DCTCP {
	cfg = cfg.WithDefaults()
	return &DCTCP{
		cfg:      cfg,
		mss:      float64(cfg.MSS),
		cwnd:     10 * float64(cfg.MSS),
		ssthresh: math.Inf(1),
	}
}

func init() {
	cc.Register("dctcp", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (d *DCTCP) Name() string { return "dctcp" }

// Alpha returns the smoothed marked fraction.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements cc.Controller: track marks per window of data; once
// per window update alpha and, if marks were seen, cut cwnd by
// alpha/2 — the DCTCP control law.
func (d *DCTCP) OnAck(a *cc.Ack) {
	d.ackedBytes += a.Acked
	if a.ECE {
		d.markedBytes += a.Acked
	}
	if a.Delivered >= d.windowEnd {
		// One observation window (~1 RTT of data) completed.
		frac := 0.0
		if d.ackedBytes > 0 {
			frac = float64(d.markedBytes) / float64(d.ackedBytes)
		}
		d.alpha = (1-g)*d.alpha + g*frac
		marked := d.markedBytes > 0
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowEnd = a.Delivered + int64(d.cwnd)
		if marked && d.cwnd >= d.ssthresh {
			d.cwnd = math.Max(d.cwnd*(1-d.alpha/2), 2*d.mss)
			return
		}
	}

	if d.cwnd < d.ssthresh {
		d.cwnd += float64(a.Acked)
		if a.ECE {
			// Marks end slow start immediately.
			d.ssthresh = d.cwnd
		}
		return
	}
	d.cwnd += d.mss * float64(a.Acked) / d.cwnd
}

// OnLoss implements cc.Controller: real losses fall back to Reno-style
// halving.
func (d *DCTCP) OnLoss(l *cc.Loss) {
	if l.Timeout {
		d.ssthresh = math.Max(d.cwnd/2, 2*d.mss)
		d.cwnd = 2 * d.mss
		return
	}
	if l.Now-d.lastCut < 100*time.Millisecond {
		return
	}
	d.lastCut = l.Now
	d.cwnd = math.Max(d.cwnd/2, 2*d.mss)
	d.ssthresh = d.cwnd
}

// Rate implements cc.Controller; DCTCP is window-based.
func (d *DCTCP) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (d *DCTCP) Window() float64 { return d.cwnd }

// SetWindow overrides the congestion window (bytes); Libra integration.
func (d *DCTCP) SetWindow(bytes float64) {
	d.cwnd = math.Max(bytes, 2*d.mss)
	if d.ssthresh < d.cwnd {
		d.ssthresh = d.cwnd
	}
}
