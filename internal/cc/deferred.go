package cc

import "time"

// DeferredMonitor tracks monitor intervals with send-time attribution:
// an ACK or loss is credited to the interval during which the packet was
// *sent*, not the interval in which the feedback arrived. An interval
// only becomes available once enough time has passed for all of its
// packets' fates to be known (roughly one RTT after it closed).
//
// This is how PCC monitors its rate experiments, and it is exactly the
// bookkeeping behind Libra's exploitation stage, which "waits for the
// feedback information coming from the candidate rates in the
// evaluation stage" before computing utilities.
type DeferredMonitor struct {
	open []deferredIV
	// Tag carries caller context (e.g. which candidate rate an interval
	// measured); it is copied into the popped interval.
}

type deferredIV struct {
	stats IntervalStats
	tag   int
}

// TaggedInterval is a finalized interval plus the caller's tag.
type TaggedInterval struct {
	Stats IntervalStats
	Tag   int
}

// Boundary closes the currently-open interval (if any) at now and opens
// a new one tagged tag with the given applied rate.
func (m *DeferredMonitor) Boundary(now time.Duration, appliedRate float64, tag int) {
	if n := len(m.open); n > 0 && m.open[n-1].stats.End == 0 {
		m.open[n-1].stats.Close(now)
	}
	iv := deferredIV{tag: tag}
	iv.stats.Reset(now)
	iv.stats.AppliedRate = appliedRate
	m.open = append(m.open, iv)
}

// find locates the interval covering sendAt. Returns nil when sendAt
// precedes all tracked intervals (stale feedback).
func (m *DeferredMonitor) find(sendAt time.Duration) *IntervalStats {
	for i := len(m.open) - 1; i >= 0; i-- {
		iv := &m.open[i]
		if sendAt >= iv.stats.Start && (iv.stats.End == 0 || sendAt < iv.stats.End) {
			return &iv.stats
		}
	}
	return nil
}

// OnAck attributes the ACK to the interval in which its packet was sent
// (send time = Now - RTT).
func (m *DeferredMonitor) OnAck(a *Ack) {
	if iv := m.find(a.Now - a.RTT); iv != nil {
		iv.AddAck(a)
	}
}

// OnLoss attributes the loss via its SentAt timestamp.
func (m *DeferredMonitor) OnLoss(l *Loss) {
	if iv := m.find(l.SentAt); iv != nil {
		iv.AddLoss(l)
	}
}

// PopFinalized removes and returns, in order, every closed interval
// whose end is at least grace in the past — i.e. whose packets' fates
// are known. dst is reused to avoid allocation.
func (m *DeferredMonitor) PopFinalized(now, grace time.Duration, dst []TaggedInterval) []TaggedInterval {
	n := 0
	for n < len(m.open) {
		end := m.open[n].stats.End
		if end == 0 || now < end+grace {
			break
		}
		dst = append(dst, TaggedInterval{Stats: m.open[n].stats, Tag: m.open[n].tag})
		n++
	}
	if n > 0 {
		rest := copy(m.open, m.open[n:])
		m.open = m.open[:rest]
	}
	return dst
}

// OpenCount returns the number of intervals still tracked (for tests).
func (m *DeferredMonitor) OpenCount() int { return len(m.open) }
