package vivace

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	for _, n := range []string{"vivace", "proteus"} {
		if _, err := cc.New(n, cc.Config{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNamesDiffer(t *testing.T) {
	if New(cc.Config{}).Name() != "vivace" || NewProteus(cc.Config{}).Name() != "proteus" {
		t.Fatal("controller names wrong")
	}
}

func TestConvergesNearCapacity(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 40 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.7 {
		t.Fatalf("Vivace utilization %.3f, want >0.7", res.Utilization)
	}
	// The utility's latency term should keep the queue mostly drained.
	if res.AvgRTT > 90*time.Millisecond {
		t.Fatalf("Vivace avg RTT %v", res.AvgRTT)
	}
}

func TestRobustToStochasticLoss(t *testing.T) {
	// PCC's headline result: random loss below the utility's cut-off
	// does not collapse throughput the way it does for loss-based TCP.
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Loss:     0.03,
		Duration: 60 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.5 {
		t.Fatalf("Vivace with 3%% loss: %.3f utilization", res.Utilization)
	}
}

func TestTrialPairStraddlesBaseRate(t *testing.T) {
	v := New(cc.Config{})
	v.starting = false
	v.rate = 1e6
	v.beginTrial()
	if len(v.plan) != 2 {
		t.Fatalf("planned %d MIs, want 2", len(v.plan))
	}
	a, b := v.plan[0].rate, v.plan[1].rate
	if (a > v.rate) == (b > v.rate) {
		t.Fatalf("trial rates %v and %v must straddle base %v", a, b, v.rate)
	}
	if v.plan[0].tag != tagTrialA || v.plan[1].tag != tagTrialB {
		t.Fatal("trial tags wrong")
	}
}

func TestMoveFollowsGradient(t *testing.T) {
	v := New(cc.Config{})
	v.rate = 1e6
	v.sign = 1
	v.move(10, 5) // +eps MI scored higher -> increase
	if v.rate <= 1e6 {
		t.Fatal("positive gradient should raise the rate")
	}
	v2 := New(cc.Config{})
	v2.rate = 1e6
	v2.sign = 1
	v2.move(5, 10)
	if v2.rate >= 1e6 {
		t.Fatal("negative gradient should lower the rate")
	}
	// Sign flip inverts attribution.
	v3 := New(cc.Config{})
	v3.rate = 1e6
	v3.sign = -1
	v3.move(10, 5) // A was the slower MI here
	if v3.rate >= 1e6 {
		t.Fatal("sign=-1: higher utility at lower rate should decrease")
	}
}

func TestChangeBoundaryCapsStep(t *testing.T) {
	v := New(cc.Config{})
	v.rate = 1e6
	v.sign = 1
	v.move(1e9, 0) // absurd gradient; first step bounded by omega0 = 5%
	if v.rate > 1e6*1.051 {
		t.Fatalf("step exceeded change boundary: %v", v.rate)
	}
}

func TestConsecutiveStepsAmplify(t *testing.T) {
	v := New(cc.Config{})
	v.rate = 1e6
	var steps []float64
	for i := 0; i < 4; i++ {
		r0 := v.rate
		v.sign = 1
		v.move(1e9, 0)
		steps = append(steps, v.rate-r0)
	}
	if !(steps[3] > steps[0]) {
		t.Fatalf("change boundary should grow on consecutive same-direction moves: %v", steps)
	}
}

func TestStartingDoublesAppliedRate(t *testing.T) {
	v := New(cc.Config{InitialRate: 1e5})
	v.OnTick(0)
	r0 := v.Rate()
	v.OnTick(100 * time.Millisecond)
	if v.Rate() != 2*r0 {
		t.Fatalf("second starting MI rate %v, want double %v", v.Rate(), 2*r0)
	}
}

func TestStartingNeedsTwoStrikesToExit(t *testing.T) {
	v := New(cc.Config{})
	v.startUSeen = true
	v.prevStartU = 100
	low := cc.TaggedInterval{Tag: tagStarting}
	low.Stats.Reset(0)
	low.Stats.AddAck(&cc.Ack{Now: 10 * time.Millisecond, RTT: 40 * time.Millisecond, Acked: 1500})
	low.Stats.AppliedRate = 4e6
	low.Stats.Close(100 * time.Millisecond)

	v.finalize(&low)
	if !v.starting {
		t.Fatal("one bad MI ended the starting phase")
	}
	v.prevStartU = 100 // finalize above overwrote nothing (strike path)
	v.finalize(&low)
	if v.starting {
		t.Fatal("two consecutive bad MIs should end the starting phase")
	}
	if v.rate != 2e6 {
		t.Fatalf("exit rate %v, want half the striking MI's rate", v.rate)
	}
}

func TestEmptyTrialMIAbandonsPair(t *testing.T) {
	v := New(cc.Config{})
	v.starting = false
	v.awaiting = true
	v.trialSeen[0] = true
	empty := cc.TaggedInterval{Tag: tagTrialB}
	empty.Stats.Reset(0)
	empty.Stats.Close(100 * time.Millisecond)
	v.finalize(&empty)
	if v.awaiting || v.trialSeen[0] {
		t.Fatal("empty trial MI should abandon the pair")
	}
}

func TestMILenEnforcesMinimumPackets(t *testing.T) {
	v := New(cc.Config{})
	v.srtt = 20 * time.Millisecond
	v.applied = 15000 // 10 packets/sec -> 5 packets take 500ms
	if mi := v.miLen(); mi != maxMI {
		t.Fatalf("MI %v, want cap %v for tiny rates", mi, maxMI)
	}
	v.applied = 1.5e6
	if mi := v.miLen(); mi != 20*time.Millisecond {
		t.Fatalf("MI %v, want srtt when packets plentiful", mi)
	}
}

func TestProteusSmootherThanVivace(t *testing.T) {
	run := func(ctrl cc.Controller) float64 {
		res := cctest.RunSingle(cctest.Scenario{
			Capacity: trace.NewLTE(trace.LTEWalking, 30*time.Second, 7),
			MinRTT:   30 * time.Millisecond,
			Buffer:   150000,
			Duration: 30 * time.Second,
		}, ctrl)
		return res.AvgRTT.Seconds()
	}
	vd := run(New(cc.Config{}))
	pd := run(NewProteus(cc.Config{}))
	// Proteus's deviation penalty should not produce *more* delay.
	if pd > vd*1.5 {
		t.Fatalf("Proteus delay %.3fs much worse than Vivace %.3fs", pd, vd)
	}
}
