// Package vivace implements PCC Vivace (Dong et al., NSDI 2018) —
// online-learning congestion control by gradient ascent on a utility
// function — and PCC Proteus (SIGCOMM 2020), which runs the same
// machinery with a deviation-penalising utility.
//
// Control loop: a starting phase doubles the rate each monitor interval
// (MI) until the measured utility drops, then the controller runs rate
// experiments — one MI at r(1+eps) and one at r(1-eps), in random order
// — and moves the base rate along the measured utility gradient with a
// confidence amplifier and a dynamic change boundary, as in the Vivace
// paper. Feedback is attributed to the MI in which packets were *sent*
// (cc.DeferredMonitor), so decisions use the utility the tested rate
// actually produced, roughly one RTT after the MI closes.
package vivace

import (
	"math"
	"math/rand"
	"time"

	"libra/internal/cc"
	"libra/internal/utility"
)

// Vivace tuning constants from the NSDI'18 paper.
const (
	eps        = 0.05 // probing fraction
	omega0     = 0.05 // initial change boundary (fraction of rate)
	omegaStep  = 0.10 // boundary growth per consecutive same-direction step
	theta0     = 1.0  // gradient-to-Mbps conversion factor
	maxAmplify = 6    // confidence amplifier cap (2^6 x)
	// minMIPackets keeps per-MI loss estimates meaningful at low rates.
	minMIPackets = 5
	maxMI        = 500 * time.Millisecond
	// startStrikesToExit: consecutive utility drops ending slow start;
	// two strikes keep single noisy MIs (stochastic loss) from ending
	// the ramp-up prematurely.
	startStrikesToExit = 2
)

// MI tags for send-time attribution.
const (
	tagStarting = iota
	tagTrialA   // the (1 + sign*eps) MI
	tagTrialB   // the (1 - sign*eps) MI
	tagHold
)

// Vivace is the controller. Construct with New or NewProteus.
type Vivace struct {
	cfg  cc.Config
	name string
	util utility.Func
	rng  *rand.Rand

	dm     cc.DeferredMonitor
	finBuf []cc.TaggedInterval
	srtt   time.Duration

	starting     bool
	rate         float64 // base rate r, bytes/sec
	applied      float64 // rate in force for the current MI
	prevStartU   float64
	startUSeen   bool
	startStrikes int

	plan      []plannedMI
	sign      float64
	trialU    [2]float64
	trialSeen [2]bool
	awaiting  bool // a trial pair is in flight / awaiting finalization

	lastDir float64
	amplify int
	omega   float64
}

type plannedMI struct {
	rate float64
	tag  int
}

// New returns a PCC Vivace controller.
func New(cfg cc.Config) *Vivace { return newWith(cfg, "vivace", utility.DefaultVivace()) }

// NewProteus returns a PCC Proteus controller (Vivace machinery with the
// deviation-penalising utility).
func NewProteus(cfg cc.Config) *Vivace { return newWith(cfg, "proteus", utility.DefaultProteus()) }

// NewWithUtility returns the Vivace machinery driven by an arbitrary
// utility function (used by clean-slate baselines).
func NewWithUtility(cfg cc.Config, name string, u utility.Func) *Vivace {
	return newWith(cfg, name, u)
}

func newWith(cfg cc.Config, name string, u utility.Func) *Vivace {
	cfg = cfg.WithDefaults()
	v := &Vivace{
		cfg:      cfg,
		name:     name,
		util:     u,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9)),
		starting: true,
		rate:     cfg.InitialRate,
		omega:    omega0,
	}
	v.applied = v.rate
	return v
}

func init() {
	cc.Register("vivace", func(cfg cc.Config) cc.Controller { return New(cfg) })
	cc.Register("proteus", func(cfg cc.Config) cc.Controller { return NewProteus(cfg) })
}

// Name implements cc.Controller.
func (v *Vivace) Name() string { return v.name }

// OnAck implements cc.Controller: feedback is aggregated per MI by send
// time.
func (v *Vivace) OnAck(a *cc.Ack) {
	v.srtt = a.SRTT
	v.dm.OnAck(a)
}

// OnLoss implements cc.Controller.
func (v *Vivace) OnLoss(l *cc.Loss) { v.dm.OnLoss(l) }

// miLen returns the monitor-interval duration: at least one RTT and at
// least long enough to carry minMIPackets at the applied rate.
func (v *Vivace) miLen() time.Duration {
	mi := v.srtt
	if mi <= 0 {
		mi = 100 * time.Millisecond
	}
	if v.applied > 0 {
		need := time.Duration(float64(minMIPackets*v.cfg.MSS) / v.applied * float64(time.Second))
		if need > mi {
			mi = need
		}
	}
	if mi > maxMI {
		mi = maxMI
	}
	if mi < 10*time.Millisecond {
		mi = 10 * time.Millisecond
	}
	return mi
}

func (v *Vivace) grace() time.Duration {
	if v.srtt > 0 {
		return v.srtt + 10*time.Millisecond
	}
	return 110 * time.Millisecond
}

// utilityOf scores a finalized monitor interval.
func (v *Vivace) utilityOf(iv *cc.IntervalStats) float64 {
	thrMbps := iv.Throughput() * 8 / 1e6
	return v.util.Value(thrMbps, iv.RTTGradient(), iv.LossRate())
}

// OnTick implements cc.Ticker: start the next MI and process any
// finalized ones.
func (v *Vivace) OnTick(now time.Duration) time.Duration {
	// Choose the rate for the MI that begins now.
	var tag int
	switch {
	case len(v.plan) > 0:
		p := v.plan[0]
		v.plan = v.plan[1:]
		v.applied, tag = p.rate, p.tag
	case v.starting:
		v.applied, tag = v.rate, tagStarting
		v.rate = v.cfg.ClampRate(v.rate * 2) // next starting MI doubles
	case !v.awaiting:
		v.beginTrial()
		p := v.plan[0]
		v.plan = v.plan[1:]
		v.applied, tag = p.rate, p.tag
	default:
		v.applied, tag = v.rate, tagHold
	}
	v.dm.Boundary(now, v.applied, tag)

	// Process finalized MIs.
	v.finBuf = v.dm.PopFinalized(now, v.grace(), v.finBuf[:0])
	for i := range v.finBuf {
		v.finalize(&v.finBuf[i])
	}
	return v.miLen()
}

func (v *Vivace) finalize(ti *cc.TaggedInterval) {
	if !ti.Stats.HasFeedback() {
		if ti.Tag == tagTrialA || ti.Tag == tagTrialB {
			// A lost experiment: abandon the pair and retry.
			v.awaiting = false
			v.trialSeen[0], v.trialSeen[1] = false, false
		}
		return
	}
	u := v.utilityOf(&ti.Stats)
	switch ti.Tag {
	case tagStarting:
		if !v.starting {
			return // stale ramp-up results after exit
		}
		if v.startUSeen && u < v.prevStartU {
			v.startStrikes++
			if v.startStrikes >= startStrikesToExit {
				v.starting = false
				// Revert past the overshoot: half the rate of the first
				// MI whose utility dropped.
				v.rate = v.cfg.ClampRate(ti.Stats.AppliedRate / 2)
				v.plan = v.plan[:0]
			}
			return
		}
		v.startStrikes = 0
		v.prevStartU = u
		v.startUSeen = true
	case tagTrialA, tagTrialB:
		idx := 0
		if ti.Tag == tagTrialB {
			idx = 1
		}
		v.trialU[idx] = u
		v.trialSeen[idx] = true
		if v.trialSeen[0] && v.trialSeen[1] {
			v.move(v.trialU[0], v.trialU[1])
			v.trialSeen[0], v.trialSeen[1] = false, false
			v.awaiting = false
		}
	case tagHold:
		// Holds carry no learning signal.
	}
}

func (v *Vivace) beginTrial() {
	v.sign = 1
	if v.rng.Intn(2) == 0 {
		v.sign = -1
	}
	v.plan = append(v.plan,
		plannedMI{rate: v.rate * (1 + v.sign*eps), tag: tagTrialA},
		plannedMI{rate: v.rate * (1 - v.sign*eps), tag: tagTrialB},
	)
	v.awaiting = true
}

// move applies one gradient step given the utilities of the two trial
// MIs (A at +sign*eps, B at -sign*eps).
func (v *Vivace) move(uA, uB float64) {
	rateMbps := v.rate * 8 / 1e6
	uPlus, uMinus := uA, uB
	if v.sign < 0 {
		uPlus, uMinus = uB, uA
	}
	grad := (uPlus - uMinus) / (2 * eps * math.Max(rateMbps, 0.01))

	dir := 1.0
	if grad < 0 {
		dir = -1
	}
	if dir == v.lastDir {
		if v.amplify < maxAmplify {
			v.amplify++
		}
		v.omega += omegaStep
	} else {
		v.amplify = 0
		v.omega = omega0
	}
	v.lastDir = dir

	stepMbps := theta0 * grad * float64(int(1)<<v.amplify)
	boundMbps := v.omega * rateMbps
	if math.Abs(stepMbps) > boundMbps {
		stepMbps = dir * boundMbps
	}
	v.rate = v.cfg.ClampRate(v.rate + stepMbps*1e6/8)
}

// Rate implements cc.Controller.
func (v *Vivace) Rate() float64 { return v.applied }

// Window implements cc.Controller: rate-based, with a loose cap of two
// seconds of data so pacing governs.
func (v *Vivace) Window() float64 { return math.Max(2*v.applied, 4*float64(v.cfg.MSS)) }

// BaseRate exposes the learned base rate (for tests).
func (v *Vivace) BaseRate() float64 { return v.rate }
