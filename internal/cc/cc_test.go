package cc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MSS != 1500 {
		t.Errorf("MSS default %d", c.MSS)
	}
	if c.InitialRate != 150000 {
		t.Errorf("InitialRate default %v", c.InitialRate)
	}
	if c.MinRate <= 0 || c.MaxRate <= c.MinRate {
		t.Errorf("rate bounds %v..%v", c.MinRate, c.MaxRate)
	}
	// Explicit values survive.
	c2 := Config{MSS: 1000, InitialRate: 5, MinRate: 1, MaxRate: 10}.WithDefaults()
	if c2.MSS != 1000 || c2.InitialRate != 5 || c2.MinRate != 1 || c2.MaxRate != 10 {
		t.Errorf("explicit config overwritten: %+v", c2)
	}
}

func TestClampRate(t *testing.T) {
	c := Config{MinRate: 10, MaxRate: 100}.WithDefaults()
	cases := []struct{ in, want float64 }{{5, 10}, {10, 10}, {50, 50}, {100, 100}, {200, 100}}
	for _, cse := range cases {
		if got := c.ClampRate(cse.in); got != cse.want {
			t.Errorf("clamp(%v)=%v want %v", cse.in, got, cse.want)
		}
	}
}

func TestIntervalStatsThroughputAndLoss(t *testing.T) {
	var s IntervalStats
	s.Reset(0)
	s.AddAck(&Ack{Now: 100 * time.Millisecond, RTT: 50 * time.Millisecond, Acked: 3000})
	s.AddAck(&Ack{Now: 200 * time.Millisecond, RTT: 60 * time.Millisecond, Acked: 3000})
	s.AddLoss(&Loss{Lost: 1500})
	s.Close(500 * time.Millisecond)
	if got := s.Throughput(); got != 12000 {
		t.Errorf("throughput %v, want 12000 B/s", got)
	}
	if got := s.LossRate(); math.Abs(got-1500.0/7500) > 1e-12 {
		t.Errorf("loss rate %v", got)
	}
	if got := s.AvgRTT(); got != 55*time.Millisecond {
		t.Errorf("avg RTT %v", got)
	}
}

func TestIntervalStatsGradient(t *testing.T) {
	var s IntervalStats
	s.Reset(0)
	s.AddAck(&Ack{Now: 0, RTT: 100 * time.Millisecond})
	s.AddAck(&Ack{Now: 1 * time.Second, RTT: 150 * time.Millisecond})
	s.Close(time.Second)
	if g := s.RTTGradient(); math.Abs(g-0.05) > 1e-9 {
		t.Errorf("gradient %v, want 0.05", g)
	}
	// Falling RTT gives a negative gradient.
	s.Reset(0)
	s.AddAck(&Ack{Now: 0, RTT: 150 * time.Millisecond})
	s.AddAck(&Ack{Now: 1 * time.Second, RTT: 100 * time.Millisecond})
	if g := s.RTTGradient(); g >= 0 {
		t.Errorf("gradient %v, want negative", g)
	}
}

func TestIntervalStatsEmpty(t *testing.T) {
	var s IntervalStats
	s.Reset(0)
	s.Close(0)
	if s.Throughput() != 0 || s.LossRate() != 0 || s.AvgRTT() != 0 || s.RTTGradient() != 0 {
		t.Error("empty interval should be all-zero")
	}
	if s.HasFeedback() {
		t.Error("empty interval claims feedback")
	}
}

func TestIntervalGradientSingleSample(t *testing.T) {
	var s IntervalStats
	s.Reset(0)
	s.AddAck(&Ack{Now: time.Second, RTT: 100 * time.Millisecond})
	if s.RTTGradient() != 0 {
		t.Error("single sample should give zero gradient")
	}
}

func TestMonitorRoll(t *testing.T) {
	var m Monitor
	m.Current().Reset(0)
	m.OnAck(&Ack{Now: 10 * time.Millisecond, RTT: 40 * time.Millisecond, Acked: 1500})
	iv := m.Roll(100 * time.Millisecond)
	if iv.Acked != 1500 || iv.Elapsed() != 100*time.Millisecond {
		t.Fatalf("rolled interval %+v", iv)
	}
	if m.Current().Acked != 0 || m.Current().Start != 100*time.Millisecond {
		t.Fatal("current interval not reset")
	}
	m.OnLoss(&Loss{Lost: 3000})
	iv2 := m.Roll(200 * time.Millisecond)
	if iv2.Lost != 3000 {
		t.Fatalf("second interval %+v", iv2)
	}
	if m.Previous() != iv2 {
		t.Fatal("Previous should return latest closed interval")
	}
}

// Property: loss rate is always within [0,1] and throughput non-negative,
// whatever feedback arrives.
func TestQuickIntervalBounds(t *testing.T) {
	f := func(acks []uint16, losses []uint16) bool {
		var s IntervalStats
		s.Reset(0)
		now := time.Duration(0)
		for _, a := range acks {
			now += time.Millisecond
			s.AddAck(&Ack{Now: now, RTT: time.Duration(a) * time.Microsecond, Acked: int(a)})
		}
		for _, l := range losses {
			s.AddLoss(&Loss{Lost: int(l)})
		}
		s.Close(now + time.Millisecond)
		lr := s.LossRate()
		return lr >= 0 && lr <= 1 && s.Throughput() >= 0
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	Register("cc-test-dummy", func(cfg Config) Controller { return nil })
	if _, err := New("cc-test-dummy", Config{}); err != nil {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := New("no-such-cca", Config{}); err == nil {
		t.Fatal("expected error for unknown controller")
	}
	found := false
	for _, n := range Names() {
		if n == "cc-test-dummy" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing registered controller")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register("cc-test-dummy", func(cfg Config) Controller { return nil })
}
