package sprout

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("sprout", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestTickCadence(t *testing.T) {
	s := New(cc.Config{})
	if d := s.OnTick(0); d != tickInterval {
		t.Fatalf("tick returned %v", d)
	}
}

func TestWindowTracksDeliveredRate(t *testing.T) {
	s := New(cc.Config{})
	now := time.Duration(0)
	s.OnTick(now)
	// 1 MB/s delivered steadily.
	for i := 0; i < 200; i++ {
		now += tickInterval
		s.OnAck(&cc.Ack{Now: now, Acked: 20000})
		s.OnTick(now)
	}
	// Window should approximate rate * budget = 1e6 * 0.1 = 100 KB
	// (plus the 2-MSS probe allowance), shrunk by the cautious margin.
	w := s.Window()
	if w < 30000 || w > 130000 {
		t.Fatalf("window %v for 1MB/s link, want ~0.1s of data", w)
	}
}

func TestCautiousUnderVariance(t *testing.T) {
	mk := func(noisy bool) float64 {
		s := New(cc.Config{})
		now := time.Duration(0)
		s.OnTick(now)
		for i := 0; i < 400; i++ {
			now += tickInterval
			bytes := 20000
			if noisy && i%2 == 0 {
				bytes = 2000
			} else if noisy {
				bytes = 38000
			}
			s.OnAck(&cc.Ack{Now: now, Acked: bytes})
			s.OnTick(now)
		}
		return s.Window()
	}
	steady, noisy := mk(false), mk(true)
	if noisy >= steady {
		t.Fatalf("noisy-link window %v not below steady %v despite equal mean", noisy, steady)
	}
}

func TestLowDelayOnVariableCellularLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.NewLTE(trace.LTEWalking, 30*time.Second, 2),
		MinRTT:   30 * time.Millisecond,
		Buffer:   450000,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	// Sprout's whole point: bounded delay on cellular links.
	if res.AvgRTT > 30*time.Millisecond+2*DelayBudget {
		t.Fatalf("Sprout avg RTT %v exceeds budget", res.AvgRTT)
	}
	if res.Utilization < 0.3 {
		t.Fatalf("Sprout utilization %.3f too conservative", res.Utilization)
	}
}

func TestTimeoutResets(t *testing.T) {
	s := New(cc.Config{})
	s.cwnd = 100000
	s.OnLoss(&cc.Loss{Timeout: true})
	if s.Window() != 2*1500 {
		t.Fatalf("timeout window %v", s.Window())
	}
}
