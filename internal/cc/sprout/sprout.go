// Package sprout implements a Sprout-like forecast-based controller
// (Winstein, Sivaraman, Balakrishnan, NSDI 2013). The original Sprout
// maintains a probabilistic model of cellular link rates and sizes its
// window so that queued data drains within a delay budget with high
// probability. We reproduce that control law with an EWMA bandwidth
// estimator plus a variance-based cautious forecast — the same
// mechanism, with a parametric stand-in for Sprout's Bayesian inference
// (documented substitution; see DESIGN.md).
package sprout

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Tick interval matching Sprout's 20 ms forecast cadence.
const tickInterval = 20 * time.Millisecond

// DelayBudget is the queueing-delay target (Sprout: deliver within
// 100 ms with 95% probability).
const DelayBudget = 100 * time.Millisecond

// Sprout is the controller. Construct with New.
type Sprout struct {
	cfg cc.Config
	mss float64

	ewmaRate float64 // bytes/sec
	ewmaVar  float64 // variance of rate samples
	lastTick time.Duration
	acked    int // bytes acked since last tick
	srtt     time.Duration

	cwnd float64
}

// New returns a Sprout controller.
func New(cfg cc.Config) *Sprout {
	cfg = cfg.WithDefaults()
	return &Sprout{
		cfg:  cfg,
		mss:  float64(cfg.MSS),
		cwnd: 10 * float64(cfg.MSS),
	}
}

func init() {
	cc.Register("sprout", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (s *Sprout) Name() string { return "sprout" }

// OnAck implements cc.Controller: accumulate delivered bytes for the
// next forecast tick.
func (s *Sprout) OnAck(a *cc.Ack) {
	s.acked += a.Acked
	s.srtt = a.SRTT
}

// OnLoss implements cc.Controller. Sprout is forecast-driven; losses
// only matter via the reduced delivery they already cause. A timeout
// resets the window.
func (s *Sprout) OnLoss(l *cc.Loss) {
	if l.Timeout {
		s.cwnd = 2 * s.mss
	}
}

// OnTick implements cc.Ticker: update the rate model and re-derive the
// cautious window every 20 ms.
func (s *Sprout) OnTick(now time.Duration) time.Duration {
	// Sample over at least two RTTs: with window-limited (ACK-clocked)
	// sending, sub-RTT buckets alternate between bursts and silence and
	// the variance estimate would swamp the mean.
	horizon := 2 * s.srtt
	if horizon < 100*time.Millisecond {
		horizon = 100 * time.Millisecond
	}
	if now-s.lastTick < horizon {
		return tickInterval
	}
	dt := (now - s.lastTick).Seconds()
	if dt > 0 {
		sample := float64(s.acked) / dt
		s.acked = 0
		s.lastTick = now
		const alpha = 0.25
		if s.ewmaRate == 0 {
			s.ewmaRate = sample
		} else {
			d := sample - s.ewmaRate
			s.ewmaRate += alpha * d
			s.ewmaVar = (1-alpha)*s.ewmaVar + alpha*d*d
		}
		// Cautious forecast: 5th-percentile-ish rate (mean - 1.64 sigma),
		// floored at 10% of the mean so the flow never stalls.
		cautious := s.ewmaRate - 1.64*math.Sqrt(s.ewmaVar)
		if cautious < 0.1*s.ewmaRate {
			cautious = 0.1 * s.ewmaRate
		}
		// Window: the data the cautious rate drains within the budget.
		w := cautious * DelayBudget.Seconds()
		// Additive probe so the estimator can discover new capacity.
		w += 2 * s.mss
		if w < 2*s.mss {
			w = 2 * s.mss
		}
		s.cwnd = w
	}
	return tickInterval
}

// Rate implements cc.Controller; Sprout is window-based.
func (s *Sprout) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (s *Sprout) Window() float64 { return s.cwnd }
