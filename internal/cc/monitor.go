package cc

import (
	"math"
	"time"
)

// IntervalStats aggregates feedback over one monitor interval (MI). It is
// the measurement unit of every utility-based and RL-based algorithm in
// this repository, and of Libra's evaluation stage.
type IntervalStats struct {
	// Start and End bound the interval in virtual time.
	Start, End time.Duration
	// Acked and Lost count bytes acknowledged and declared lost during
	// the interval.
	Acked, Lost int
	// RTTCount is the number of RTT samples observed.
	RTTCount int
	// RTTSum accumulates samples for the average.
	RTTSum time.Duration
	// FirstRTT/FirstAt and LastRTT/LastAt bound the interval's samples.
	FirstRTT, LastRTT time.Duration
	FirstAt, LastAt   time.Duration
	MinRTTSample      time.Duration
	AppliedRate       float64 // pacing rate in force during the interval, bytes/sec
	// Least-squares accumulators for the d(RTT)/dt estimate, with time
	// measured from FirstAt in seconds.
	sumT, sumT2, sumR, sumTR float64
}

// Reset clears the stats for reuse, setting the new interval start.
func (s *IntervalStats) Reset(start time.Duration) {
	*s = IntervalStats{Start: start}
}

// AddAck folds one ACK into the interval.
func (s *IntervalStats) AddAck(a *Ack) {
	s.Acked += a.Acked
	s.RTTCount++
	s.RTTSum += a.RTT
	if s.RTTCount == 1 {
		s.FirstRTT, s.FirstAt = a.RTT, a.Now
		s.MinRTTSample = a.RTT
	}
	s.LastRTT, s.LastAt = a.RTT, a.Now
	if a.RTT < s.MinRTTSample {
		s.MinRTTSample = a.RTT
	}
	t := (a.Now - s.FirstAt).Seconds()
	r := a.RTT.Seconds()
	s.sumT += t
	s.sumT2 += t * t
	s.sumR += r
	s.sumTR += t * r
}

// AddLoss folds one loss event into the interval.
func (s *IntervalStats) AddLoss(l *Loss) { s.Lost += l.Lost }

// Close marks the interval finished at end.
func (s *IntervalStats) Close(end time.Duration) { s.End = end }

// Elapsed returns the interval length.
func (s *IntervalStats) Elapsed() time.Duration { return s.End - s.Start }

// Throughput returns the acknowledged-byte rate over the interval in
// bytes/sec, or zero for an empty or zero-length interval.
func (s *IntervalStats) Throughput() float64 {
	el := s.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Acked) / el
}

// LossRate returns lost/(lost+acked), or zero when nothing was sent.
func (s *IntervalStats) LossRate() float64 {
	tot := s.Acked + s.Lost
	if tot == 0 {
		return 0
	}
	return float64(s.Lost) / float64(tot)
}

// AvgRTT returns the mean RTT sample of the interval, or zero when no
// samples arrived.
func (s *IntervalStats) AvgRTT() time.Duration {
	if s.RTTCount == 0 {
		return 0
	}
	return s.RTTSum / time.Duration(s.RTTCount)
}

// RTTGradient estimates d(RTT)/dt over the interval in seconds of RTT per
// second of wall time (dimensionless), using a least-squares fit over
// all RTT samples. A two-endpoint estimate would be dominated by
// per-sample noise, which Eq. 1's max(0, .) rectification then turns
// into a systematic penalty against higher-rate candidates; the
// regression keeps the estimate centred on the true queue trend. With
// fewer than two samples it returns zero.
func (s *IntervalStats) RTTGradient() float64 {
	if s.RTTCount < 2 || s.LastAt == s.FirstAt {
		return 0
	}
	n := float64(s.RTTCount)
	varT := s.sumT2 - s.sumT*s.sumT/n
	if varT <= 0 {
		return 0
	}
	cov := s.sumTR - s.sumT*s.sumR/n
	g := cov / varT
	if math.IsNaN(g) || math.IsInf(g, 0) {
		return 0
	}
	return g
}

// HasFeedback reports whether any ACK arrived during the interval. Libra's
// no-ACK special cases key off this.
func (s *IntervalStats) HasFeedback() bool { return s.RTTCount > 0 }

// Monitor tracks a rolling sequence of monitor intervals. The zero value
// is ready to use; call Roll at each interval boundary.
type Monitor struct {
	cur  IntervalStats
	prev IntervalStats
}

// Current returns the interval currently accumulating.
func (m *Monitor) Current() *IntervalStats { return &m.cur }

// Previous returns the most recently closed interval.
func (m *Monitor) Previous() *IntervalStats { return &m.prev }

// OnAck folds an ACK into the current interval.
func (m *Monitor) OnAck(a *Ack) { m.cur.AddAck(a) }

// OnLoss folds a loss into the current interval.
func (m *Monitor) OnLoss(l *Loss) { m.cur.AddLoss(l) }

// Roll closes the current interval at now and starts a fresh one,
// returning the closed interval. The returned pointer is valid until the
// next Roll.
func (m *Monitor) Roll(now time.Duration) *IntervalStats {
	m.cur.Close(now)
	m.prev = m.cur
	m.cur.Reset(now)
	return &m.prev
}
