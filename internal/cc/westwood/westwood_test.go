package westwood

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("westwood", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthEstimateTracksAckRate(t *testing.T) {
	w := New(cc.Config{})
	now := time.Duration(0)
	// 1500 bytes every 10 ms = 150 kB/s.
	for i := 0; i < 200; i++ {
		now += 10 * time.Millisecond
		w.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, Acked: 1500})
	}
	if bwe := w.BWE(); bwe < 100e3 || bwe > 200e3 {
		t.Fatalf("BWE %v, want ~150kB/s", bwe)
	}
}

func TestFasterRecoveryUsesBDP(t *testing.T) {
	w := New(cc.Config{})
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 10 * time.Millisecond
		w.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, Acked: 1500})
	}
	w.cwnd = 100 * 1500 // inflated window
	w.OnLoss(&cc.Loss{Now: now, Lost: 1500})
	// BDP = 150kB/s * 40ms = 6kB, not cwnd/2 = 75kB.
	if w.Window() > 20*1500 {
		t.Fatalf("post-loss window %v, want ~BDP", w.Window())
	}
}

func TestResilienceVsRenoUnderStochasticLoss(t *testing.T) {
	// Westwood's claim to fame: random (non-congestion) loss does not
	// collapse the window to half because BDP estimation restores it.
	scn := cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Loss:     0.01,
		Duration: 30 * time.Second,
	}
	ww := cctest.RunSingle(scn, New(cc.Config{}))
	if ww.Utilization < 0.5 {
		t.Fatalf("Westwood utilization %.3f under 1%% loss", ww.Utilization)
	}
}

func TestSetWindowFloor(t *testing.T) {
	w := New(cc.Config{})
	w.SetWindow(1)
	if w.Window() != 2*1500 {
		t.Fatalf("window %v", w.Window())
	}
}
