// Package westwood implements TCP Westwood+ (Mascolo et al.):
// Reno-style growth with a bandwidth-estimate-based ("faster") recovery
// — on loss the window is set to the estimated bandwidth-delay product
// instead of being halved blindly. The paper's Sec. 7 names Westwood as
// one of the classic CCAs its Libra parameters extend to; internal/core
// integrates it via the generic window adapter (W-Libra).
package westwood

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Westwood is the controller. Construct with New.
type Westwood struct {
	cfg cc.Config
	mss float64

	cwnd     float64
	ssthresh float64

	// Bandwidth estimation: EWMA over per-sample ack rates, sampled at
	// most once per 50 ms as in the Westwood+ design.
	bwe        float64 // bytes/sec
	ackedSince int
	lastSample time.Duration
	minRTT     time.Duration

	recoverUntil time.Duration
}

// New returns a Westwood+ controller.
func New(cfg cc.Config) *Westwood {
	cfg = cfg.WithDefaults()
	return &Westwood{
		cfg:      cfg,
		mss:      float64(cfg.MSS),
		cwnd:     10 * float64(cfg.MSS),
		ssthresh: math.Inf(1),
	}
}

func init() {
	cc.Register("westwood", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (w *Westwood) Name() string { return "westwood" }

// BWE returns the current bandwidth estimate in bytes/sec.
func (w *Westwood) BWE() float64 { return w.bwe }

// OnAck implements cc.Controller.
func (w *Westwood) OnAck(a *cc.Ack) {
	w.minRTT = a.MinRTT
	w.ackedSince += a.Acked
	if w.lastSample == 0 {
		w.lastSample = a.Now
	} else if dt := (a.Now - w.lastSample).Seconds(); dt >= 0.05 {
		sample := float64(w.ackedSince) / dt
		w.ackedSince = 0
		w.lastSample = a.Now
		const alpha = 0.9 // Westwood+ low-pass filter
		if w.bwe == 0 {
			w.bwe = sample
		} else {
			w.bwe = alpha*w.bwe + (1-alpha)*sample
		}
	}

	if w.cwnd < w.ssthresh {
		w.cwnd += float64(a.Acked)
		if w.cwnd > w.ssthresh {
			w.cwnd = w.ssthresh
		}
		return
	}
	w.cwnd += w.mss * float64(a.Acked) / w.cwnd
}

// OnLoss implements cc.Controller: faster recovery — window becomes the
// estimated BDP.
func (w *Westwood) OnLoss(l *cc.Loss) {
	if l.Timeout {
		w.ssthresh = math.Max(w.bdp(), 2*w.mss)
		w.cwnd = 2 * w.mss
		return
	}
	if l.Now < w.recoverUntil {
		return
	}
	w.recoverUntil = l.Now + 200*time.Millisecond
	w.ssthresh = math.Max(w.bdp(), 2*w.mss)
	w.cwnd = w.ssthresh
}

func (w *Westwood) bdp() float64 {
	if w.bwe <= 0 || w.minRTT <= 0 {
		return w.cwnd / 2
	}
	return w.bwe * w.minRTT.Seconds()
}

// Rate implements cc.Controller; Westwood is window-based.
func (w *Westwood) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (w *Westwood) Window() float64 { return w.cwnd }

// SetWindow overrides the congestion window (bytes); Libra integration.
func (w *Westwood) SetWindow(bytes float64) {
	w.cwnd = math.Max(bytes, 2*w.mss)
	if w.ssthresh < w.cwnd {
		w.ssthresh = w.cwnd
	}
}
