package cc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestDeferredAttributionBySendTime(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(0, 100, 1)
	m.Boundary(ms(100), 200, 2)

	// ACK arrives during interval 2, but its packet was sent at 50ms —
	// inside interval 1.
	m.OnAck(&Ack{Now: ms(130), RTT: ms(80), Acked: 1500})
	// ACK for a packet sent at 110ms — interval 2.
	m.OnAck(&Ack{Now: ms(150), RTT: ms(40), Acked: 3000})
	// Loss whose packet was sent in interval 1.
	m.OnLoss(&Loss{Now: ms(160), SentAt: ms(90), Lost: 1500})

	m.Boundary(ms(200), 300, 3)
	out := m.PopFinalized(ms(400), ms(50), nil)
	if len(out) != 2 {
		t.Fatalf("finalized %d intervals, want 2", len(out))
	}
	if out[0].Tag != 1 || out[0].Stats.Acked != 1500 || out[0].Stats.Lost != 1500 {
		t.Fatalf("interval 1 stats %+v", out[0].Stats)
	}
	if out[1].Tag != 2 || out[1].Stats.Acked != 3000 || out[1].Stats.Lost != 0 {
		t.Fatalf("interval 2 stats %+v", out[1].Stats)
	}
}

func TestDeferredGraceWithholdsYoungIntervals(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(0, 100, 1)
	m.Boundary(ms(100), 100, 2)
	// Interval 1 closed at 100ms; with 80ms grace it finalizes at 180ms.
	if out := m.PopFinalized(ms(150), ms(80), nil); len(out) != 0 {
		t.Fatalf("interval finalized too early: %d", len(out))
	}
	if out := m.PopFinalized(ms(180), ms(80), nil); len(out) != 1 {
		t.Fatal("interval should finalize at end+grace")
	}
	if m.OpenCount() != 1 {
		t.Fatalf("open count %d, want 1 (the still-open interval)", m.OpenCount())
	}
}

func TestDeferredStaleFeedbackIgnored(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(ms(100), 100, 1)
	// Packet sent before any tracked interval.
	m.OnAck(&Ack{Now: ms(150), RTT: ms(100), Acked: 999})
	m.Boundary(ms(200), 100, 2)
	out := m.PopFinalized(ms(500), ms(10), nil)
	if out[0].Stats.Acked != 0 {
		t.Fatal("stale ACK should not be attributed")
	}
}

func TestDeferredOpenIntervalReceivesCurrentSends(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(0, 100, 7)
	m.OnAck(&Ack{Now: ms(60), RTT: ms(40), Acked: 1500}) // sent at 20ms
	m.Boundary(ms(100), 100, 8)
	out := m.PopFinalized(ms(300), ms(40), nil)
	if len(out) != 1 || out[0].Tag != 7 || out[0].Stats.Acked != 1500 {
		t.Fatalf("open-interval attribution failed: %+v", out)
	}
}

func TestDeferredAppliedRateRecorded(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(0, 123.5, 1)
	m.Boundary(ms(50), 456, 2)
	out := m.PopFinalized(ms(200), ms(10), nil)
	if out[0].Stats.AppliedRate != 123.5 {
		t.Fatalf("applied rate %v", out[0].Stats.AppliedRate)
	}
}

func TestDeferredDstReuse(t *testing.T) {
	var m DeferredMonitor
	m.Boundary(0, 1, 1)
	m.Boundary(ms(10), 1, 2)
	buf := make([]TaggedInterval, 0, 4)
	buf = m.PopFinalized(ms(100), ms(1), buf)
	if len(buf) != 1 {
		t.Fatalf("len %d", len(buf))
	}
	m.Boundary(ms(110), 1, 3)
	buf2 := m.PopFinalized(ms(300), ms(1), buf[:0])
	if len(buf2) != 1 || buf2[0].Tag != 2 {
		t.Fatalf("reuse pop got %+v", buf2)
	}
}

// Property: every byte acked or lost with a send time inside a tracked
// interval is attributed exactly once, whatever the interleaving.
func TestQuickDeferredConservation(t *testing.T) {
	f := func(events []uint8) bool {
		var m DeferredMonitor
		now := time.Duration(0)
		m.Boundary(now, 1, 0)
		boundaries := 1
		var fed, collected int
		for _, e := range events {
			now += ms(int(e%7) + 1)
			switch e % 3 {
			case 0:
				if boundaries < 30 {
					m.Boundary(now, 1, boundaries)
					boundaries++
				}
			case 1:
				// ACK with a send time in the recent past.
				rtt := ms(int(e%5) + 1)
				if now-rtt >= 0 {
					m.OnAck(&Ack{Now: now, RTT: rtt, Acked: 100})
					fed += 100
				}
			case 2:
				sent := now - ms(int(e%4))
				if sent >= 0 {
					m.OnLoss(&Loss{Now: now, SentAt: sent, Lost: 50})
					fed += 50
				}
			}
		}
		m.Boundary(now+ms(1), 1, 99)
		out := m.PopFinalized(now+time.Hour, 0, nil)
		for _, iv := range out {
			collected += iv.Stats.Acked + iv.Stats.Lost
		}
		// One interval stays open; nothing is fed to it after the final
		// boundary, so everything fed must be collected.
		return fed == collected
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
