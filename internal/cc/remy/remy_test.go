package remy

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("remy", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func ack(now, rtt, min time.Duration) *cc.Ack {
	return &cc.Ack{Now: now, RTT: rtt, SRTT: rtt, MinRTT: min, Acked: 1500}
}

func TestGrowsOnEmptyQueue(t *testing.T) {
	r := New(cc.Config{})
	base := 40 * time.Millisecond
	w0 := r.Window()
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		now += base
		r.OnAck(ack(now, base, base))
	}
	if r.Window() <= w0 {
		t.Fatal("Remy did not grow with rtt_ratio ~1")
	}
}

func TestBacksOffOnBufferbloat(t *testing.T) {
	r := New(cc.Config{})
	base := 40 * time.Millisecond
	r.cwnd = 100 * 1500
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		now += base
		r.OnAck(ack(now, 4*base, base)) // rtt_ratio = 4
	}
	if r.Window() >= 100*1500 {
		t.Fatal("Remy did not back off under bufferbloat")
	}
	if r.Rate() == 0 {
		t.Fatal("backoff rule should install an intersend pacing cap")
	}
}

func TestRuleOrderFirstMatchWins(t *testing.T) {
	table := []Rule{
		{RTTRatioMin: 0, RTTRatioMax: 10, WindowMultiple: 1, WindowIncrement: 5},
		{RTTRatioMin: 0, RTTRatioMax: 10, WindowMultiple: 0.1, WindowIncrement: 0},
	}
	r := NewWithTable(cc.Config{}, table)
	w0 := r.Window()
	r.OnAck(ack(40*time.Millisecond, 40*time.Millisecond, 40*time.Millisecond))
	if r.Window() != w0+5*1500 {
		t.Fatalf("first rule should win: %v", r.Window())
	}
}

func TestNoMatchingRuleHolds(t *testing.T) {
	r := NewWithTable(cc.Config{}, []Rule{
		{RTTRatioMin: 100, WindowMultiple: 0.5},
	})
	w0 := r.Window()
	r.OnAck(ack(40*time.Millisecond, 40*time.Millisecond, 40*time.Millisecond))
	if r.Window() != w0 {
		t.Fatal("unmatched state should leave the window unchanged")
	}
}

func TestAdjustsOncePerRTT(t *testing.T) {
	r := New(cc.Config{})
	base := 40 * time.Millisecond
	r.OnAck(ack(base, base, base))
	w := r.Window()
	r.OnAck(ack(base+time.Millisecond, base, base))
	if r.Window() != w {
		t.Fatal("Remy adjusted twice within one RTT")
	}
}

func TestWindowFloor(t *testing.T) {
	r := New(cc.Config{})
	r.cwnd = 3 * 1500
	base := 40 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now += base
		r.OnAck(ack(now, 10*base, base))
	}
	if r.Window() < 2*1500 {
		t.Fatalf("window %v below floor", r.Window())
	}
}

func TestReasonableOnWiredLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(12)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   60000,
		Duration: 20 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.5 {
		t.Fatalf("Remy wired utilization %.3f", res.Utilization)
	}
}
