// Package remy implements a RemyCC-style rule-table congestion
// controller (Winstein & Balakrishnan, "TCP ex Machina", SIGCOMM 2013).
//
// A RemyCC is a function from a three-signal state — the EWMA of
// inter-ACK arrival times (ack_ewma), the EWMA of the corresponding
// inter-send times (send_ewma), and the ratio of the latest RTT to the
// minimum RTT (rtt_ratio) — to an action: a window multiple m, a window
// increment b, and a minimum intersend pacing gap. The original table
// is produced by a large offline optimisation; we ship a compact
// hand-derived table with the same qualitative structure (aggressive
// when the queue is short, multiplicative back-off as rtt_ratio grows),
// documented as a substitution in DESIGN.md. Custom tables can be
// supplied for experimentation.
package remy

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Rule is one entry of a RemyCC table: a box in signal space plus the
// action to take inside it. Boxes are matched in order; the first match
// wins.
type Rule struct {
	// Bounds on rtt_ratio (inclusive min, exclusive max); Max<=0 means
	// unbounded.
	RTTRatioMin, RTTRatioMax float64
	// Bounds on ack_ewma in milliseconds; Max<=0 means unbounded.
	AckEWMAMin, AckEWMAMax float64
	// WindowMultiple m and WindowIncrement b (in MSS): cwnd = m*cwnd + b.
	WindowMultiple  float64
	WindowIncrement float64
	// IntersendMs is the minimum gap between sends in milliseconds
	// (0 = unpaced).
	IntersendMs float64
}

// DefaultTable returns the shipped rule table.
func DefaultTable() []Rule {
	return []Rule{
		// Queue empty, ACKs arriving briskly: ramp fast.
		{RTTRatioMin: 0, RTTRatioMax: 1.15, AckEWMAMin: 0, AckEWMAMax: 5, WindowMultiple: 1, WindowIncrement: 2},
		// Queue empty, slower ACK clock: ramp moderately.
		{RTTRatioMin: 0, RTTRatioMax: 1.15, WindowMultiple: 1, WindowIncrement: 1},
		// Small standing queue: hold, gentle probe.
		{RTTRatioMin: 1.15, RTTRatioMax: 1.5, WindowMultiple: 1, WindowIncrement: 0.5, IntersendMs: 0.1},
		// Queue building: stop growing.
		{RTTRatioMin: 1.5, RTTRatioMax: 2.0, WindowMultiple: 1, WindowIncrement: 0, IntersendMs: 0.3},
		// Serious queueing: multiplicative decrease.
		{RTTRatioMin: 2.0, RTTRatioMax: 3.0, WindowMultiple: 0.85, WindowIncrement: 0, IntersendMs: 0.5},
		// Bufferbloat: back off hard.
		{RTTRatioMin: 3.0, WindowMultiple: 0.6, WindowIncrement: 0, IntersendMs: 1},
	}
}

// Remy is the rule-table controller. Construct with New.
type Remy struct {
	cfg   cc.Config
	mss   float64
	table []Rule

	cwnd      float64
	intersend time.Duration

	ackEWMA  float64 // ms
	sendEWMA float64 // ms
	lastAck  time.Duration
	minRTT   time.Duration
	lastRTT  time.Duration
	lastAdj  time.Duration
}

// New returns a controller with the default table.
func New(cfg cc.Config) *Remy { return NewWithTable(cfg, DefaultTable()) }

// NewWithTable returns a controller driven by a custom table.
func NewWithTable(cfg cc.Config, table []Rule) *Remy {
	cfg = cfg.WithDefaults()
	return &Remy{
		cfg:   cfg,
		mss:   float64(cfg.MSS),
		table: table,
		cwnd:  10 * float64(cfg.MSS),
	}
}

func init() {
	cc.Register("remy", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (r *Remy) Name() string { return "remy" }

// match finds the first applicable rule.
func (r *Remy) match(rttRatio float64) *Rule {
	for i := range r.table {
		rule := &r.table[i]
		if rttRatio < rule.RTTRatioMin {
			continue
		}
		if rule.RTTRatioMax > 0 && rttRatio >= rule.RTTRatioMax {
			continue
		}
		if r.ackEWMA < rule.AckEWMAMin {
			continue
		}
		if rule.AckEWMAMax > 0 && r.ackEWMA >= rule.AckEWMAMax {
			continue
		}
		return rule
	}
	return nil
}

// OnAck implements cc.Controller: update the signals and, once per RTT,
// apply the matched rule's action.
func (r *Remy) OnAck(a *cc.Ack) {
	const alpha = 1.0 / 8
	if r.lastAck > 0 {
		gap := float64(a.Now-r.lastAck) / float64(time.Millisecond)
		if r.ackEWMA == 0 {
			r.ackEWMA = gap
		} else {
			r.ackEWMA += alpha * (gap - r.ackEWMA)
		}
	}
	r.lastAck = a.Now
	r.lastRTT = a.RTT
	r.minRTT = a.MinRTT

	if a.Now-r.lastAdj < a.SRTT {
		return
	}
	r.lastAdj = a.Now
	ratio := 1.0
	if r.minRTT > 0 {
		ratio = float64(r.lastRTT) / float64(r.minRTT)
	}
	rule := r.match(ratio)
	if rule == nil {
		return
	}
	r.cwnd = math.Max(rule.WindowMultiple*r.cwnd+rule.WindowIncrement*r.mss, 2*r.mss)
	r.intersend = time.Duration(rule.IntersendMs * float64(time.Millisecond))
}

// OnLoss implements cc.Controller: RemyCCs were trained without an
// explicit loss signal; we apply a conservative halving on timeout only.
func (r *Remy) OnLoss(l *cc.Loss) {
	if l.Timeout {
		r.cwnd = math.Max(r.cwnd/2, 2*r.mss)
	}
}

// Rate implements cc.Controller: the intersend gap maps to a pacing
// rate cap.
func (r *Remy) Rate() float64 {
	if r.intersend <= 0 {
		return 0
	}
	return r.mss / r.intersend.Seconds()
}

// Window implements cc.Controller.
func (r *Remy) Window() float64 { return r.cwnd }
