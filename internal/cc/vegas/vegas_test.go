package vegas

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("vegas", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestHoldsLowQueueOnWiredLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   300000, // deep buffer Vegas must not fill
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.7 {
		t.Fatalf("Vegas utilization %.3f", res.Utilization)
	}
	// Alpha..Beta packets of queue is ~2ms at 24 Mbps; allow slack for
	// slow-start overshoot at the start of the run.
	if res.AvgRTT > 60*time.Millisecond {
		t.Fatalf("Vegas avg RTT %v: queue not controlled", res.AvgRTT)
	}
}

func TestBacksOffWhenDiffExceedsBeta(t *testing.T) {
	v := New(cc.Config{})
	v.slowStart = false
	v.cwnd = 100 * 1500
	base := 40 * time.Millisecond
	// RTT doubled => large diff => decrease once per RTT.
	v.OnAck(&cc.Ack{Now: time.Second, RTT: 2 * base, SRTT: 2 * base, MinRTT: base, Acked: 1500})
	if v.Window() >= 100*1500 {
		t.Fatal("Vegas did not decrease under heavy queueing")
	}
}

func TestIncreasesWhenQueueEmpty(t *testing.T) {
	v := New(cc.Config{})
	v.slowStart = false
	v.cwnd = 10 * 1500
	base := 40 * time.Millisecond
	v.OnAck(&cc.Ack{Now: time.Second, RTT: base, SRTT: base, MinRTT: base, Acked: 1500})
	if v.Window() <= 10*1500 {
		t.Fatal("Vegas did not probe with empty queue")
	}
}

func TestAdjustsOncePerRTT(t *testing.T) {
	v := New(cc.Config{})
	v.slowStart = false
	v.cwnd = 10 * 1500
	base := 40 * time.Millisecond
	v.OnAck(&cc.Ack{Now: time.Second, RTT: base, SRTT: base, MinRTT: base, Acked: 1500})
	w := v.Window()
	v.OnAck(&cc.Ack{Now: time.Second + time.Millisecond, RTT: base, SRTT: base, MinRTT: base, Acked: 1500})
	if v.Window() != w {
		t.Fatal("Vegas adjusted twice within one RTT")
	}
}

func TestLossFallback(t *testing.T) {
	v := New(cc.Config{})
	v.cwnd = 100 * 1500
	v.OnLoss(&cc.Loss{Now: time.Second, Lost: 1500})
	if v.Window() != 75*1500 {
		t.Fatalf("loss window %v, want 3/4", v.Window())
	}
	v.OnLoss(&cc.Loss{Now: time.Second, Timeout: true, Lost: 1500})
	if v.Window() != 2*1500 {
		t.Fatalf("timeout window %v", v.Window())
	}
}
