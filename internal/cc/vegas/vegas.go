// Package vegas implements TCP Vegas (Brakmo & Peterson, 1995), the
// canonical delay-based classic CCA: it keeps between alpha and beta
// packets queued at the bottleneck.
package vegas

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Vegas parameters (packets of backlog to maintain).
const (
	Alpha = 2.0
	Beta  = 4.0
	Gamma = 1.0
)

// Vegas is a Vegas controller. Construct with New.
type Vegas struct {
	cfg cc.Config
	mss float64

	cwnd      float64 // bytes
	ssthresh  float64
	lastAdj   time.Duration
	slowStart bool
}

// New returns a Vegas controller.
func New(cfg cc.Config) *Vegas {
	cfg = cfg.WithDefaults()
	return &Vegas{
		cfg:       cfg,
		mss:       float64(cfg.MSS),
		cwnd:      4 * float64(cfg.MSS),
		ssthresh:  math.Inf(1),
		slowStart: true,
	}
}

func init() {
	cc.Register("vegas", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (v *Vegas) Name() string { return "vegas" }

// OnAck implements cc.Controller: once per RTT, compare the expected and
// actual rates and nudge the window to keep Alpha..Beta packets queued.
func (v *Vegas) OnAck(a *cc.Ack) {
	if a.MinRTT <= 0 || a.RTT <= 0 {
		return
	}
	// diff = (expected - actual) * baseRTT, in packets.
	expected := v.cwnd / a.MinRTT.Seconds()
	actual := v.cwnd / a.SRTT.Seconds()
	diff := (expected - actual) * a.MinRTT.Seconds() / v.mss

	if v.slowStart {
		if diff > Gamma {
			v.slowStart = false
			v.cwnd = math.Max(v.cwnd*3/4, 2*v.mss)
			return
		}
		// Double every other RTT: +0.5 MSS per acked MSS.
		v.cwnd += float64(a.Acked) / 2
		return
	}

	// Adjust once per RTT.
	if a.Now-v.lastAdj < a.SRTT {
		return
	}
	v.lastAdj = a.Now
	switch {
	case diff < Alpha:
		v.cwnd += v.mss
	case diff > Beta:
		v.cwnd = math.Max(v.cwnd-v.mss, 2*v.mss)
	}
}

// OnLoss implements cc.Controller: Vegas falls back to AIMD on loss.
func (v *Vegas) OnLoss(l *cc.Loss) {
	v.slowStart = false
	if l.Timeout {
		v.cwnd = 2 * v.mss
		return
	}
	v.cwnd = math.Max(v.cwnd*3/4, 2*v.mss)
}

// Rate implements cc.Controller; Vegas is window-based.
func (v *Vegas) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (v *Vegas) Window() float64 { return v.cwnd }
