package cc

// FixedRate is an unresponsive constant-bit-rate controller. It models
// cross traffic and serves as a trivially predictable controller in
// tests.
type FixedRate struct {
	// R is the pacing rate in bytes/sec.
	R float64
}

// Name implements Controller.
func (FixedRate) Name() string { return "cbr" }

// OnAck implements Controller (no-op: the rate never adapts).
func (FixedRate) OnAck(*Ack) {}

// OnLoss implements Controller (no-op).
func (FixedRate) OnLoss(*Loss) {}

// Rate implements Controller.
func (f FixedRate) Rate() float64 { return f.R }

// Window implements Controller. CBR traffic is purely paced, so the
// window is effectively unbounded: two seconds' worth of data.
func (f FixedRate) Window() float64 { return 2 * f.R }
