package indigo

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("indigo", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleActionMovesTowardTarget(t *testing.T) {
	in := New(cc.Config{})
	in.cwnd = 100 * 1500
	// Target far below cwnd: should choose the halving action.
	idx := in.oracleAction(10 * 1500)
	if actions[idx].mult != 0.5 {
		t.Fatalf("expected halving, got action %d", idx)
	}
	// Target far above: should choose doubling.
	idx = in.oracleAction(500 * 1500)
	if actions[idx].mult != 2 {
		t.Fatalf("expected doubling, got action %d", idx)
	}
	// Target at cwnd: hold.
	idx = in.oracleAction(100 * 1500)
	if actions[idx].mult != 1 || actions[idx].add != 0 {
		t.Fatalf("expected hold, got action %d", idx)
	}
}

func TestConservativeEquilibrium(t *testing.T) {
	// Indigo's oracle steers to 60% of BDP: on a clean link it should
	// deliver clearly less than full capacity but far from zero —
	// matching the paper's Tab. 5 observation (8.2 of 16 Mbps fair
	// share).
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 20 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.3 || res.Utilization > 0.9 {
		t.Fatalf("Indigo utilization %.3f, want conservative mid-range", res.Utilization)
	}
	// Low delay is Indigo's selling point.
	if res.AvgRTT > 60*time.Millisecond {
		t.Fatalf("Indigo avg RTT %v", res.AvgRTT)
	}
}

func TestImitationModelMatchesOracle(t *testing.T) {
	model := TrainImitation(1, 4000)
	in := New(cc.Config{})
	in.UseModel(model)
	// The trained policy should at minimum keep the flow alive and
	// bounded on a simple link.
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 15 * time.Second,
	}, in)
	if res.Throughput <= 0 {
		t.Fatal("imitation policy starved the flow")
	}
	if res.Utilization > 1.05 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestTimeoutHalves(t *testing.T) {
	in := New(cc.Config{})
	in.cwnd = 100 * 1500
	in.OnLoss(&cc.Loss{Timeout: true})
	if in.Window() != 50*1500 {
		t.Fatalf("timeout window %v", in.Window())
	}
}

func TestAdjustsOncePerRTT(t *testing.T) {
	in := New(cc.Config{})
	base := 40 * time.Millisecond
	a := &cc.Ack{Now: base, RTT: base, SRTT: base, MinRTT: base, Acked: 1500, DeliveryRate: 1e6}
	in.OnAck(a)
	w := in.Window()
	a.Now = base + time.Millisecond
	in.OnAck(a)
	if in.Window() != w {
		t.Fatal("Indigo adjusted twice within one RTT")
	}
}
