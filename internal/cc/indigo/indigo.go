// Package indigo implements an Indigo-like controller (Yan et al.,
// Pantheon, ATC 2018). Indigo is an offline-trained neural policy that
// picks discrete congestion-window actions. We reproduce the runtime
// (discrete cwnd action set driven by a policy over normalised state)
// and provide two policies:
//
//   - the default shipped policy imitates Indigo's training oracle — it
//     steers cwnd towards a *conservative* fraction of the estimated
//     BDP, reproducing Indigo's well-documented cautious behaviour
//     (e.g. the under-utilising equilibrium of the paper's Tab. 5);
//   - an imitation-trained MLP (TrainImitation + UseModel) standing in
//     for the original's DAgger-trained LSTM.
//
// Both substitutions are documented in DESIGN.md.
package indigo

import (
	"math"
	"math/rand"
	"time"

	"libra/internal/cc"
	"libra/internal/nn"
)

// actions is Indigo's discrete cwnd action set.
var actions = []struct {
	mult float64
	add  float64 // in MSS
}{
	{mult: 0.5, add: 0},
	{mult: 1 / 1.025, add: 0},
	{mult: 1, add: 0},
	{mult: 1.025, add: 0},
	{mult: 2, add: 0},
	{mult: 1, add: 2},
}

// conservativeBDP is the fraction of the measured BDP the oracle steers
// towards; below 1.0 it reproduces Indigo's cautious equilibrium.
const conservativeBDP = 0.6

// Indigo is the controller. Construct with New.
type Indigo struct {
	cfg cc.Config
	mss float64

	cwnd    float64
	minRTT  time.Duration
	deliest float64 // delivery-rate EWMA, bytes/sec
	lastAdj time.Duration

	model *nn.MLP // optional imitation policy
}

// New returns an Indigo controller with the oracle-imitating default
// policy.
func New(cfg cc.Config) *Indigo {
	cfg = cfg.WithDefaults()
	return &Indigo{cfg: cfg, mss: float64(cfg.MSS), cwnd: 10 * float64(cfg.MSS)}
}

func init() {
	cc.Register("indigo", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// UseModel installs an imitation-trained policy network (3 inputs ->
// len(actions) logits).
func (in *Indigo) UseModel(m *nn.MLP) { in.model = m }

// Name implements cc.Controller.
func (in *Indigo) Name() string { return "indigo" }

// state returns the normalised observation (cwnd in BDP units, RTT
// ratio, delivery in cwnd units).
func (in *Indigo) state(a *cc.Ack) [3]float64 {
	bdp := math.Max(in.deliest*in.minRTT.Seconds(), in.mss)
	return [3]float64{
		in.cwnd / bdp,
		float64(a.RTT) / math.Max(float64(in.minRTT), 1),
		a.DeliveryRate / math.Max(in.deliest, 1),
	}
}

// oracleTarget computes the cwnd the oracle steers towards. Without a
// queueing signal the delivery rate only reflects the current window
// (not link capacity), so the oracle probes upward; once the RTT
// inflates, it settles at a conservative fraction of the measured BDP.
func (in *Indigo) oracleTarget(a *cc.Ack) float64 {
	ratio := float64(a.RTT) / math.Max(float64(in.minRTT), 1)
	if ratio < 1.1 {
		return 1.5 * in.cwnd // probe: capacity not yet observed
	}
	target := conservativeBDP * in.deliest * in.minRTT.Seconds()
	return math.Max(target, 4*in.mss)
}

// oracleAction picks the discrete action moving cwnd closest to the
// conservative BDP target.
func (in *Indigo) oracleAction(target float64) int {
	best, bestDist := 2, math.Inf(1)
	for i, act := range actions {
		next := act.mult*in.cwnd + act.add*in.mss
		d := math.Abs(next - target)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// OnAck implements cc.Controller: once per RTT pick a discrete action.
func (in *Indigo) OnAck(a *cc.Ack) {
	if in.minRTT == 0 || a.RTT < in.minRTT {
		in.minRTT = a.RTT
	}
	if a.DeliveryRate > 0 {
		const alpha = 0.2
		if in.deliest == 0 {
			in.deliest = a.DeliveryRate
		} else {
			in.deliest += alpha * (a.DeliveryRate - in.deliest)
		}
	}
	if a.Now-in.lastAdj < a.SRTT {
		return
	}
	in.lastAdj = a.Now

	var idx int
	if in.model != nil {
		st := in.state(a)
		logits := in.model.Forward(st[:])
		for i, v := range logits {
			if v > logits[idx] {
				idx = i
			}
		}
	} else {
		idx = in.oracleAction(in.oracleTarget(a))
	}
	act := actions[idx]
	in.cwnd = math.Max(act.mult*in.cwnd+act.add*in.mss, 2*in.mss)
}

// OnLoss implements cc.Controller: the policy reacts only through its
// state; a timeout resets conservatively.
func (in *Indigo) OnLoss(l *cc.Loss) {
	if l.Timeout {
		in.cwnd = math.Max(in.cwnd/2, 2*in.mss)
	}
}

// Rate implements cc.Controller; Indigo is window-based.
func (in *Indigo) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (in *Indigo) Window() float64 { return in.cwnd }

// TrainImitation fits a small MLP to the oracle policy on synthetic
// states, standing in for Indigo's DAgger training. Returns the trained
// model (install with UseModel).
func TrainImitation(seed int64, samples int) *nn.MLP {
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewMLP(rng, nn.Tanh, 3, 24, len(actions))
	opt := nn.NewAdam(3e-3)
	tmp := New(cc.Config{Seed: seed})
	for i := 0; i < samples; i++ {
		// Synthesise a plausible state.
		tmp.deliest = 1e5 + rng.Float64()*2e7
		tmp.minRTT = time.Duration(10+rng.Intn(190)) * time.Millisecond
		bdp := tmp.deliest * tmp.minRTT.Seconds()
		tmp.cwnd = bdp * (0.1 + 2.5*rng.Float64())
		target := conservativeBDP * bdp
		want := tmp.oracleAction(math.Max(target, 4*tmp.mss))

		st := [3]float64{
			tmp.cwnd / math.Max(bdp, 1),
			1 + rng.Float64()*2,
			0.5 + rng.Float64(),
		}
		logits := model.Forward(st[:])
		// Softmax cross-entropy gradient.
		maxv := logits[0]
		for _, v := range logits {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		probs := make([]float64, len(logits))
		for j, v := range logits {
			probs[j] = math.Exp(v - maxv)
			sum += probs[j]
		}
		grad := make([]float64, len(logits))
		for j := range probs {
			probs[j] /= sum
			grad[j] = probs[j]
		}
		grad[want] -= 1
		model.ZeroGrad()
		model.Backward(grad)
		opt.Step(model.Params(), model.Grads())
	}
	return model
}
