// Package cubic implements CUBIC congestion control (Ha, Rhee, Xu —
// RFC 8312), the default loss-based algorithm of the Linux kernel and
// the primary classic component of C-Libra.
package cubic

import (
	"math"
	"time"

	"libra/internal/cc"
)

// CUBIC constants from RFC 8312.
const (
	// C scales the cubic window growth (MSS/sec^3).
	C = 0.4
	// Beta is the multiplicative decrease factor.
	Beta = 0.7
)

// Cubic is a CUBIC controller. Construct with New. All window arithmetic
// is done in MSS units internally, as in the reference implementation.
type Cubic struct {
	cfg cc.Config
	mss float64

	cwnd     float64 // MSS units
	ssthresh float64 // MSS units

	wMax       float64 // window before the last reduction, MSS
	wLastMax   float64 // for fast convergence
	k          float64 // seconds until the plateau
	epochStart time.Duration
	inEpoch    bool

	recoverUntil time.Duration
	lastRTT      time.Duration

	// resumePlateau makes the next epoch start at the plateau point
	// (t = K) instead of the post-loss dip: external *upward* window
	// overrides (SetWindow) represent an operating point to probe
	// *from*, not a loss event, so growth must continue immediately.
	resumePlateau bool
	// overrideWMax, when set, is the previous operating point a
	// *downward* external override should recover towards — the same
	// concave catch-up CUBIC performs after a real loss. Without this
	// memory, every downward override would erase CUBIC's anchor and
	// let competing flows ratchet it to starvation.
	overrideWMax float64
}

// New returns a CUBIC controller with a 10-MSS initial window.
func New(cfg cc.Config) *Cubic {
	cfg = cfg.WithDefaults()
	return &Cubic{
		cfg:      cfg,
		mss:      float64(cfg.MSS),
		cwnd:     10,
		ssthresh: math.Inf(1),
	}
}

func init() {
	cc.Register("cubic", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements cc.Controller: slow start below ssthresh, cubic
// window growth with a TCP-friendly floor above it.
func (c *Cubic) OnAck(a *cc.Ack) {
	c.lastRTT = a.SRTT
	ackedMSS := float64(a.Acked) / c.mss
	if c.cwnd < c.ssthresh {
		c.cwnd += ackedMSS
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	if !c.inEpoch {
		c.startEpoch(a.Now)
	}
	t := (a.Now - c.epochStart).Seconds()
	rtt := a.SRTT.Seconds()

	// Cubic target one RTT ahead.
	target := c.wCubic(t + rtt)
	// TCP-friendly region (RFC 8312 section 4.2).
	wEst := c.wMax*Beta + 3*(1-Beta)/(1+Beta)*(t/math.Max(rtt, 1e-4))
	if target < wEst {
		target = wEst
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / c.cwnd * ackedMSS
	} else {
		// Minimal growth to keep probing (as in the kernel's 1/(100*cwnd)).
		c.cwnd += ackedMSS / (100 * c.cwnd)
	}
}

func (c *Cubic) wCubic(t float64) float64 {
	d := t - c.k
	return C*d*d*d + c.wMax
}

func (c *Cubic) startEpoch(now time.Duration) {
	c.inEpoch = true
	c.epochStart = now
	if c.overrideWMax > c.cwnd {
		// Downward override: recover towards the remembered operating
		// point, exactly like the post-loss concave catch-up.
		c.wMax = c.overrideWMax
		c.overrideWMax = 0
		c.k = math.Cbrt((c.wMax - c.cwnd) / C)
		return
	}
	c.overrideWMax = 0
	if c.cwnd < c.wLastMax {
		c.wMax = c.cwnd * (2 - Beta) / 2 // fast convergence
	} else {
		c.wMax = c.cwnd
	}
	if c.wMax < c.cwnd {
		c.k = 0
	} else {
		c.k = math.Cbrt(c.wMax * (1 - Beta) / C)
	}
	if c.resumePlateau {
		// Skip the concave recovery: the window already sits at wMax.
		c.epochStart = now - time.Duration(c.k*float64(time.Second))
		c.resumePlateau = false
	}
}

// OnLoss implements cc.Controller: multiplicative decrease by Beta and a
// new cubic epoch, at most once per RTT-ish guard window.
func (c *Cubic) OnLoss(l *cc.Loss) {
	if l.Timeout {
		c.wLastMax = c.cwnd
		c.ssthresh = math.Max(c.cwnd*Beta, 2)
		c.cwnd = 2
		c.inEpoch = false
		c.recoverUntil = 0
		c.overrideWMax = 0
		return
	}
	if l.Now < c.recoverUntil {
		return
	}
	guard := c.lastRTT
	if guard < 10*time.Millisecond {
		guard = 10 * time.Millisecond
	}
	c.recoverUntil = l.Now + guard
	c.wLastMax = c.cwnd
	c.cwnd = math.Max(c.cwnd*Beta, 2)
	c.ssthresh = c.cwnd
	c.inEpoch = false
	c.resumePlateau = false // a real loss recovers along the full curve
	c.overrideWMax = 0
}

// Rate implements cc.Controller; CUBIC is ACK-clocked (window-based).
func (c *Cubic) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (c *Cubic) Window() float64 { return c.cwnd * c.mss }

// SetWindow overrides the congestion window (bytes) and restarts the
// cubic epoch from the new value. Orca's DRL rescaling and Libra's
// base-rate seeding use this hook.
func (c *Cubic) SetWindow(bytes float64) {
	w := bytes / c.mss
	if w < 2 {
		w = 2
	}
	if w < c.cwnd {
		// Downward: remember a nearby recovery target (capped so the
		// next exploration does not re-attempt a just-rejected rate).
		c.overrideWMax = math.Min(c.cwnd, 1.5*w)
		c.resumePlateau = false
	} else {
		c.overrideWMax = 0
		c.resumePlateau = true
	}
	c.cwnd = w
	if c.ssthresh < w {
		c.ssthresh = w
	}
	c.inEpoch = false
}

// SlowStart reports whether the controller is still below ssthresh.
func (c *Cubic) SlowStart() bool { return c.cwnd < c.ssthresh }
