package cubic

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("cubic", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowStartDoubles(t *testing.T) {
	c := New(cc.Config{})
	w0 := c.Window()
	// Ack one full window.
	for i := 0; i < 10; i++ {
		c.OnAck(&cc.Ack{Now: time.Duration(i) * time.Millisecond, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond, MinRTT: 40 * time.Millisecond, Acked: 1500})
	}
	if got := c.Window(); math.Abs(got-2*w0) > 1 {
		t.Fatalf("slow start window %v after one window acked, want %v", got, 2*w0)
	}
}

func TestLossMultiplicativeDecrease(t *testing.T) {
	c := New(cc.Config{})
	c.SetWindow(100 * 1500)
	c.ssthresh = 0 // force congestion avoidance
	w0 := c.Window()
	c.OnLoss(&cc.Loss{Now: time.Second, Lost: 1500})
	if got := c.Window(); math.Abs(got-w0*Beta) > 1 {
		t.Fatalf("post-loss window %v, want %v", got, w0*Beta)
	}
	// A second loss inside the guard window must not decrease again.
	w1 := c.Window()
	c.OnLoss(&cc.Loss{Now: time.Second + time.Millisecond, Lost: 1500})
	if c.Window() != w1 {
		t.Fatal("second loss in same window reduced cwnd again")
	}
}

func TestTimeoutCollapsesWindow(t *testing.T) {
	c := New(cc.Config{})
	c.SetWindow(100 * 1500)
	c.OnLoss(&cc.Loss{Now: time.Second, Lost: 1500, Timeout: true})
	if c.Window() != 2*1500 {
		t.Fatalf("timeout window %v, want 2 MSS", c.Window())
	}
}

func TestCubicGrowthConcaveThenConvex(t *testing.T) {
	// After a loss, growth should be fast, flatten near wMax, then
	// accelerate past it — the signature cubic shape.
	c := New(cc.Config{})
	c.SetWindow(200 * 1500)
	c.ssthresh = 0
	c.OnLoss(&cc.Loss{Now: 0, Lost: 1500})

	now := time.Duration(0)
	rtt := 40 * time.Millisecond
	var windows []float64
	// K = cbrt(wMax*(1-Beta)/C) ≈ 5.3 s for wMax=200 MSS; run well past it.
	for i := 0; i < 12000; i++ {
		now += time.Millisecond
		c.OnAck(&cc.Ack{Now: now, RTT: rtt, SRTT: rtt, MinRTT: rtt, Acked: 1500})
		if i%1200 == 0 {
			windows = append(windows, c.Window())
		}
	}
	// Growth increments early vs near plateau.
	early := windows[1] - windows[0]
	mid := windows[4] - windows[3]
	late := windows[len(windows)-1] - windows[len(windows)-2]
	if !(early > mid) {
		t.Fatalf("expected concave start: early=%v mid=%v", early, mid)
	}
	if !(late > mid) {
		t.Fatalf("expected convex tail: late=%v mid=%v", late, mid)
	}
	if c.Window() <= 200*1500*Beta {
		t.Fatal("window never recovered past the post-loss level")
	}
}

func TestSetWindowFloorsAtTwoMSS(t *testing.T) {
	c := New(cc.Config{})
	c.SetWindow(10)
	if c.Window() != 2*1500 {
		t.Fatalf("window %v, want 2 MSS floor", c.Window())
	}
}

func TestFillsLinkAndCausesBufferbloat(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   30 * time.Millisecond,
		Buffer:   150000,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.85 {
		t.Fatalf("CUBIC utilization %.3f, want >0.85", res.Utilization)
	}
	// 150 KB at 24 Mbps is 50 ms of queue; CUBIC should mostly fill it.
	if res.AvgRTT < 45*time.Millisecond {
		t.Fatalf("CUBIC avg RTT %v shows no bufferbloat", res.AvgRTT)
	}
}

func TestStochasticLossCollapsesThroughput(t *testing.T) {
	// The classic failure mode: 2% random loss should hurt CUBIC badly.
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(48)),
		MinRTT:   60 * time.Millisecond,
		Buffer:   360000,
		Loss:     0.02,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization > 0.7 {
		t.Fatalf("CUBIC with 2%% loss achieved %.3f utilization; expected collapse", res.Utilization)
	}
}

func TestIntraFairnessTwoCubicFlows(t *testing.T) {
	a, b := cctest.RunPair(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(48)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 60 * time.Second,
	}, New(cc.Config{}), New(cc.Config{}), 0)
	ratio := a.Throughput / (a.Throughput + b.Throughput)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("two CUBIC flows split %.2f/%.2f", ratio, 1-ratio)
	}
}
