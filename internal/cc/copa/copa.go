// Package copa implements Copa (Arun & Balakrishnan, NSDI 2018):
// delay-based congestion control that steers the sending rate towards
// the target 1/(delta * queueing-delay), with velocity-doubling for fast
// convergence and an optional TCP-competitive mode.
package copa

import (
	"math"
	"time"

	"libra/internal/cc"
)

// DefaultDelta is Copa's default aggressiveness parameter.
const DefaultDelta = 0.5

// Copa is a Copa controller. Construct with New.
type Copa struct {
	cfg   cc.Config
	mss   float64
	delta float64

	cwnd float64 // bytes

	// RTTstanding: min RTT over the most recent srtt/2 window.
	standWin []rttSample
	minRTT   time.Duration

	velocity   float64
	direction  int // +1 up, -1 down, 0 unset
	dirSince   time.Duration
	dirRTTs    int
	lastUpdate time.Duration

	// Competitive-mode detection: if the queue never drains for several
	// RTTs, a buffer-filling competitor is assumed and delta shrinks.
	competitive   bool
	nearEmptySeen time.Duration
}

type rttSample struct {
	at  time.Duration
	rtt time.Duration
}

// New returns a Copa controller with the default delta.
func New(cfg cc.Config) *Copa {
	cfg = cfg.WithDefaults()
	return &Copa{
		cfg:      cfg,
		mss:      float64(cfg.MSS),
		delta:    DefaultDelta,
		cwnd:     10 * float64(cfg.MSS),
		velocity: 1,
	}
}

func init() {
	cc.Register("copa", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (c *Copa) Name() string { return "copa" }

// OnAck implements cc.Controller.
func (c *Copa) OnAck(a *cc.Ack) {
	if c.minRTT == 0 || a.RTT < c.minRTT {
		c.minRTT = a.RTT
	}
	// Maintain RTTstanding window (srtt/2).
	c.standWin = append(c.standWin, rttSample{at: a.Now, rtt: a.RTT})
	win := a.SRTT / 2
	cut := 0
	for cut < len(c.standWin) && a.Now-c.standWin[cut].at > win {
		cut++
	}
	if cut > 0 {
		c.standWin = c.standWin[cut:]
	}
	standing := a.RTT
	for _, s := range c.standWin {
		if s.rtt < standing {
			standing = s.rtt
		}
	}

	dq := (standing - c.minRTT).Seconds()
	// Competitive-mode bookkeeping: remember the last time the queue was
	// nearly empty (queueing delay below 10% of minRTT).
	if dq < 0.1*c.minRTT.Seconds() {
		c.nearEmptySeen = a.Now
	}
	if a.Now-c.nearEmptySeen > 5*a.SRTT && a.SRTT > 0 {
		c.competitive = true
	} else {
		c.competitive = false
	}
	delta := c.delta
	if c.competitive {
		delta = c.delta / 2 // more aggressive against buffer-fillers
	}

	var target float64 // bytes/sec
	if dq <= 0 {
		target = math.Inf(1)
	} else {
		target = c.mss / (delta * dq)
	}
	cur := c.cwnd / math.Max(standing.Seconds(), 1e-4)

	dir := 1
	if cur > target {
		dir = -1
	}
	c.updateVelocity(a, dir)

	step := c.velocity * c.mss * float64(a.Acked) / (delta * c.cwnd)
	if dir > 0 {
		c.cwnd += step
	} else {
		c.cwnd = math.Max(c.cwnd-step, 2*c.mss)
	}
}

func (c *Copa) updateVelocity(a *cc.Ack, dir int) {
	if dir != c.direction {
		c.direction = dir
		c.velocity = 1
		c.dirSince = a.Now
		c.dirRTTs = 0
		return
	}
	// Count RTTs in the same direction; after 3, double each RTT.
	if a.Now-c.dirSince >= a.SRTT && a.SRTT > 0 {
		c.dirSince = a.Now
		c.dirRTTs++
		if c.dirRTTs >= 3 {
			c.velocity = math.Min(c.velocity*2, float64(1<<16))
		}
	}
}

// OnLoss implements cc.Controller: Copa reacts to loss only mildly (it
// is delay-controlled), halving on timeout.
func (c *Copa) OnLoss(l *cc.Loss) {
	if l.Timeout {
		c.cwnd = math.Max(c.cwnd/2, 2*c.mss)
		c.velocity = 1
	}
}

// Rate implements cc.Controller; Copa paces at 2*cwnd/RTTstanding, but
// in this emulation the window alone reproduces its behaviour.
func (c *Copa) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (c *Copa) Window() float64 { return c.cwnd }
