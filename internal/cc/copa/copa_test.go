package copa

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("copa", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestLowDelayHighUtilization(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   600000, // very deep buffer
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.7 {
		t.Fatalf("Copa utilization %.3f", res.Utilization)
	}
	// Copa targets ~1/(delta) packets of queue; delay must stay far
	// below the 200ms the full buffer would add.
	if res.AvgRTT > 80*time.Millisecond {
		t.Fatalf("Copa avg RTT %v: queue not controlled", res.AvgRTT)
	}
}

func TestMovesTowardTarget(t *testing.T) {
	c := New(cc.Config{})
	base := 40 * time.Millisecond
	now := time.Duration(0)
	// Minimal queueing: target rate is huge, cwnd should grow.
	w0 := c.Window()
	for i := 0; i < 50; i++ {
		now += time.Millisecond
		c.OnAck(&cc.Ack{Now: now, RTT: base, SRTT: base, MinRTT: base, Acked: 1500})
	}
	if c.Window() <= w0 {
		t.Fatal("Copa did not grow with empty queue")
	}
	// Heavy queueing: current rate above target, cwnd should shrink.
	// Space ACKs so the RTTstanding window (srtt/2) ages out the old
	// low-RTT samples.
	w1 := c.Window()
	for i := 0; i < 100; i++ {
		now += 10 * time.Millisecond
		c.OnAck(&cc.Ack{Now: now, RTT: 4 * base, SRTT: 4 * base, MinRTT: base, Acked: 1500})
	}
	if c.Window() >= w1 {
		t.Fatal("Copa did not shrink under heavy queueing")
	}
}

func TestVelocityResetsOnDirectionChange(t *testing.T) {
	c := New(cc.Config{})
	base := 40 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 400; i++ { // long same-direction run
		now += 10 * time.Millisecond
		c.OnAck(&cc.Ack{Now: now, RTT: base, SRTT: base, MinRTT: base, Acked: 1500})
	}
	if c.velocity <= 1 {
		t.Fatalf("velocity %v never doubled", c.velocity)
	}
	// Direction flip: feed high-RTT samples until the standing window
	// only contains them, at which point direction reverses.
	for i := 0; i < 30; i++ {
		now += 10 * time.Millisecond
		c.OnAck(&cc.Ack{Now: now, RTT: 6 * base, SRTT: 6 * base, MinRTT: base, Acked: 1500})
	}
	if c.direction != -1 {
		t.Fatalf("direction %d after sustained queueing, want -1", c.direction)
	}
	if c.velocity != 1 {
		t.Fatalf("velocity %v after direction change, want 1", c.velocity)
	}
}

func TestTimeoutHalves(t *testing.T) {
	c := New(cc.Config{})
	c.cwnd = 100 * 1500
	c.OnLoss(&cc.Loss{Timeout: true, Lost: 1500})
	if c.Window() != 50*1500 {
		t.Fatalf("timeout window %v", c.Window())
	}
}

func TestSharesWithSelf(t *testing.T) {
	a, b := cctest.RunPair(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 40 * time.Second,
	}, New(cc.Config{}), New(cc.Config{}), 0)
	ratio := a.Throughput / (a.Throughput + b.Throughput)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("two Copa flows split %.2f/%.2f", ratio, 1-ratio)
	}
}
