package nn

import (
	"math"
	"math/rand"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

// Supported activations.
const (
	Tanh Activation = iota
	ReLU
)

func (a Activation) apply(v float64) float64 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	default:
		return math.Tanh(v)
	}
}

func (a Activation) deriv(pre, post float64) float64 {
	switch a {
	case ReLU:
		if pre <= 0 {
			return 0
		}
		return 1
	default:
		return 1 - post*post
	}
}

// layer is one dense layer with cached forward state for backprop.
type layer struct {
	w, b   *Matrix
	dw, db *Matrix
	in     []float64 // cached input
	pre    []float64 // pre-activation
	out    []float64 // post-activation
	last   bool      // output layer: linear
}

// MLP is a fully-connected network with identical hidden activations and
// a linear output layer.
type MLP struct {
	Sizes  []int
	Act    Activation
	layers []*layer
	gradIn []float64
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(rng, Tanh, 12, 32, 32, 2) for a 12-input, 2-output net with two
// 32-unit tanh hidden layers.
func NewMLP(rng *rand.Rand, act Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: sizes, Act: act}
	for i := 0; i < len(sizes)-1; i++ {
		l := &layer{
			w:    NewMatrix(sizes[i+1], sizes[i]),
			b:    NewMatrix(sizes[i+1], 1),
			dw:   NewMatrix(sizes[i+1], sizes[i]),
			db:   NewMatrix(sizes[i+1], 1),
			pre:  make([]float64, sizes[i+1]),
			out:  make([]float64, sizes[i+1]),
			last: i == len(sizes)-2,
		}
		l.w.XavierInit(rng)
		m.layers = append(m.layers, l)
	}
	return m
}

// Forward runs the network, caching activations for a subsequent
// Backward. The returned slice is owned by the MLP and overwritten by
// the next Forward.
func (m *MLP) Forward(x []float64) []float64 {
	cur := x
	for _, l := range m.layers {
		l.in = cur
		l.w.MulVec(cur, l.pre)
		for i := range l.pre {
			l.pre[i] += l.b.Data[i]
			if l.last {
				l.out[i] = l.pre[i]
			} else {
				l.out[i] = m.Act.apply(l.pre[i])
			}
		}
		cur = l.out
	}
	return cur
}

// Backward accumulates parameter gradients for the most recent Forward,
// given dLoss/dOutput, and returns dLoss/dInput.
func (m *MLP) Backward(gradOut []float64) []float64 {
	grad := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		l := m.layers[i]
		// delta = grad * act'(pre)
		delta := make([]float64, len(grad))
		for j := range grad {
			if l.last {
				delta[j] = grad[j]
			} else {
				delta[j] = grad[j] * m.Act.deriv(l.pre[j], l.out[j])
			}
		}
		l.dw.AddOuter(1, delta, l.in)
		for j := range delta {
			l.db.Data[j] += delta[j]
		}
		if i > 0 {
			grad = l.w.MulVecT(delta, nil)
		} else {
			m.gradIn = l.w.MulVecT(delta, m.gradIn)
			grad = m.gradIn
		}
	}
	return grad
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.layers {
		l.dw.Zero()
		l.db.Zero()
	}
}

// Params returns the parameter matrices in a stable order
// (W1, b1, W2, b2, ...).
func (m *MLP) Params() []*Matrix {
	out := make([]*Matrix, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.w, l.b)
	}
	return out
}

// Grads returns the gradient matrices aligned with Params.
func (m *MLP) Grads() []*Matrix {
	out := make([]*Matrix, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.dw, l.db)
	}
	return out
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// Clone returns a deep copy sharing no state.
func (m *MLP) Clone() *MLP {
	out := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for _, l := range m.layers {
		out.layers = append(out.layers, &layer{
			w:    l.w.Clone(),
			b:    l.b.Clone(),
			dw:   NewMatrix(l.dw.Rows, l.dw.Cols),
			db:   NewMatrix(l.db.Rows, l.db.Cols),
			pre:  make([]float64, len(l.pre)),
			out:  make([]float64, len(l.out)),
			last: l.last,
		})
	}
	return out
}
