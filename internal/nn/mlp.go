package nn

import (
	"math"
	"math/rand"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

// Supported activations.
const (
	Tanh Activation = iota
	ReLU
	// TanhApprox is a rational tanh approximation (the 7/6 Padé
	// continued fraction, clamped to +/-1 beyond |x| ~ 4.97). Max
	// absolute error vs math.Tanh is under 1e-4, it is monotone and
	// bounded to [-1, 1], and it costs a handful of multiplies instead
	// of math.Tanh's ~9 ns range reduction — the difference between the
	// batched GEMM and the activation pass dominating an inference.
	// Policy networks use it for both training and inference, so the
	// approximation is self-consistent: there is no train/serve skew.
	TanhApprox
)

func (a Activation) apply(v float64) float64 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case TanhApprox:
		return tanhApprox(v)
	default:
		return math.Tanh(v)
	}
}

func (a Activation) deriv(pre, post float64) float64 {
	switch a {
	case ReLU:
		if pre <= 0 {
			return 0
		}
		return 1
	default:
		// Tanh and TanhApprox: 1 - tanh^2. For the approximation this
		// is itself approximate (within ~2e-4 of the rational
		// function's true derivative), which PPO's stochastic updates
		// absorb; the gradient-check tests bound the gap.
		return 1 - post*post
	}
}

// tanhApproxClamp is where the rational approximation crosses +/-1;
// beyond it the output saturates (math.Tanh is within 1e-4 of 1 there).
const tanhApproxClamp = 4.97

// tanhApprox is Lambert's continued fraction for tanh truncated at the
// x^7/x^6 term, evaluated as a polynomial ratio.
func tanhApprox(x float64) float64 {
	if x > tanhApproxClamp {
		return 1
	}
	if x < -tanhApproxClamp {
		return -1
	}
	t := x * x
	p := x * (135135 + t*(17325+t*(378+t)))
	q := 135135 + t*(62370+t*(3150+t*28))
	return p / q
}

// layer is one dense layer with cached forward state for backprop.
type layer struct {
	w, b   *Matrix
	dw, db *Matrix
	in     []float64 // cached input
	pre    []float64 // pre-activation
	out    []float64 // post-activation
	delta  []float64 // Backward scratch: grad * act'(pre)
	gin    []float64 // Backward scratch: grad propagated to the layer below
	last   bool      // output layer: linear

	// Batched-forward arena: batchArena backs up to batchCap rows of
	// post-activations; batchView is the header handed to MulBatch so
	// steady-state ForwardBatch allocates nothing.
	batchArena []float64
	batchCap   int
	batchView  Matrix
}

// MLP is a fully-connected network with identical hidden activations and
// a linear output layer.
type MLP struct {
	Sizes  []int
	Act    Activation
	layers []*layer
	gradIn []float64
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(rng, Tanh, 12, 32, 32, 2) for a 12-input, 2-output net with two
// 32-unit tanh hidden layers.
func NewMLP(rng *rand.Rand, act Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: sizes, Act: act}
	for i := 0; i < len(sizes)-1; i++ {
		l := &layer{
			w:     NewMatrix(sizes[i+1], sizes[i]),
			b:     NewMatrix(sizes[i+1], 1),
			dw:    NewMatrix(sizes[i+1], sizes[i]),
			db:    NewMatrix(sizes[i+1], 1),
			pre:   make([]float64, sizes[i+1]),
			out:   make([]float64, sizes[i+1]),
			delta: make([]float64, sizes[i+1]),
			gin:   make([]float64, sizes[i]),
			last:  i == len(sizes)-2,
		}
		l.w.XavierInit(rng)
		m.layers = append(m.layers, l)
	}
	m.gradIn = make([]float64, sizes[0])
	return m
}

// Forward runs the network, caching activations for a subsequent
// Backward. The returned slice is owned by the MLP and overwritten by
// the next Forward.
func (m *MLP) Forward(x []float64) []float64 {
	cur := x
	for _, l := range m.layers {
		l.in = cur
		l.w.MulVec(cur, l.pre)
		for i := range l.pre {
			l.pre[i] += l.b.Data[i]
			if l.last {
				l.out[i] = l.pre[i]
			} else {
				l.out[i] = m.Act.apply(l.pre[i])
			}
		}
		cur = l.out
	}
	return cur
}

// EnsureBatch grows every layer's batched-activation arena to hold
// maxB rows, so subsequent ForwardBatch calls up to that batch size
// allocate nothing. ForwardBatch calls it implicitly; pre-sizing to the
// expected peak batch merely front-loads the growth.
func (m *MLP) EnsureBatch(maxB int) {
	for _, l := range m.layers {
		if l.batchCap < maxB {
			l.batchArena = make([]float64, maxB*l.w.Rows)
			l.batchCap = maxB
		}
	}
}

// ForwardBatch runs X.Rows inputs (one per row) through the network in
// one pass per layer and returns a B x outDim matrix owned by the MLP
// (overwritten by the next ForwardBatch, like Forward's return). Row i
// is bit-identical to Forward(X row i): MulBatch reproduces MulVec's
// accumulation order and the bias-add/activation epilogue applies the
// same two operations in the same order. ForwardBatch does not cache
// activations for Backward and leaves Forward's caches untouched.
func (m *MLP) ForwardBatch(X *Matrix) *Matrix {
	if X.Cols != m.Sizes[0] {
		panic("nn: ForwardBatch input width mismatch")
	}
	m.EnsureBatch(X.Rows)
	cur := X
	for _, l := range m.layers {
		n := l.w.Rows
		dst := &l.batchView
		dst.Rows, dst.Cols, dst.Data = X.Rows, n, l.batchArena[:X.Rows*n]
		l.w.MulBatch(cur, dst)
		bias := l.b.Data
		for r := 0; r < X.Rows; r++ {
			row := dst.Data[r*n : r*n+n]
			if l.last {
				for i := range row {
					row[i] += bias[i]
				}
			} else {
				for i := range row {
					row[i] = m.Act.apply(row[i] + bias[i])
				}
			}
		}
		cur = dst
	}
	return cur
}

// Backward accumulates parameter gradients for the most recent Forward,
// given dLoss/dOutput, and returns dLoss/dInput. It reuses per-layer
// scratch, so it allocates nothing — PPO's update loop calls it once
// per sample per epoch.
func (m *MLP) Backward(gradOut []float64) []float64 {
	grad := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		l := m.layers[i]
		// delta = grad * act'(pre)
		delta := l.delta
		for j := range grad {
			if l.last {
				delta[j] = grad[j]
			} else {
				delta[j] = grad[j] * m.Act.deriv(l.pre[j], l.out[j])
			}
		}
		l.dw.AddOuter(1, delta, l.in)
		for j := range delta {
			l.db.Data[j] += delta[j]
		}
		if i > 0 {
			grad = l.w.MulVecT(delta, l.gin)
		} else {
			m.gradIn = l.w.MulVecT(delta, m.gradIn)
			grad = m.gradIn
		}
	}
	return grad
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.layers {
		l.dw.Zero()
		l.db.Zero()
	}
}

// Params returns the parameter matrices in a stable order
// (W1, b1, W2, b2, ...).
func (m *MLP) Params() []*Matrix {
	out := make([]*Matrix, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.w, l.b)
	}
	return out
}

// Grads returns the gradient matrices aligned with Params.
func (m *MLP) Grads() []*Matrix {
	out := make([]*Matrix, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.dw, l.db)
	}
	return out
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// Clone returns a deep copy sharing no state.
func (m *MLP) Clone() *MLP {
	out := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for _, l := range m.layers {
		out.layers = append(out.layers, &layer{
			w:     l.w.Clone(),
			b:     l.b.Clone(),
			dw:    NewMatrix(l.dw.Rows, l.dw.Cols),
			db:    NewMatrix(l.db.Rows, l.db.Cols),
			pre:   make([]float64, len(l.pre)),
			out:   make([]float64, len(l.out)),
			delta: make([]float64, len(l.pre)),
			gin:   make([]float64, l.w.Cols),
			last:  l.last,
		})
	}
	out.gradIn = make([]float64, m.Sizes[0])
	return out
}
