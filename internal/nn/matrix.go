// Package nn is a small, dependency-free neural-network library: dense
// layers with tanh activations, reverse-mode gradients, and the Adam
// optimizer. It is the substitution for the TensorFlow 1.14 stack the
// paper trains its PPO agents with (see DESIGN.md): the PPO semantics
// are unchanged, only the tensor backend differs.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// XavierInit fills the matrix with Glorot-uniform weights.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// MulVec computes y = M x for a vector x of length Cols; y has length
// Rows. dst is reused when it has the right length.
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("nn: MulVec dimension mismatch: %d cols vs %d input", m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		dst = make([]float64, m.Rows)
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var sum float64
		for c, w := range row {
			sum += w * x[c]
		}
		dst[r] = sum
	}
	return dst
}

// MulVecT computes y = M^T x for a vector x of length Rows; y has length
// Cols.
func (m *Matrix) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("nn: MulVecT dimension mismatch: %d rows vs %d input", m.Rows, len(x)))
	}
	if len(dst) != m.Cols {
		dst = make([]float64, m.Cols)
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		for c := range row {
			dst[c] += row[c] * xr
		}
	}
	return dst
}

// AddOuter accumulates M += a * x y^T (outer product), used for weight
// gradients.
func (m *Matrix) AddOuter(a float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: AddOuter dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ax := a * x[r]
		for c := range row {
			row[c] += ax * y[c]
		}
	}
}
