// Package nn is a small, dependency-free neural-network library: dense
// layers with tanh activations, reverse-mode gradients, and the Adam
// optimizer. It is the substitution for the TensorFlow 1.14 stack the
// paper trains its PPO agents with (see DESIGN.md): the PPO semantics
// are unchanged, only the tensor backend differs.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// XavierInit fills the matrix with Glorot-uniform weights.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// MulVec computes y = M x for a vector x of length Cols; y has length
// Rows. dst is reused when it has the right length.
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("nn: MulVec dimension mismatch: %d cols vs %d input", m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		dst = make([]float64, m.Rows)
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var sum float64
		for c, w := range row {
			sum += w * x[c]
		}
		dst[r] = sum
	}
	return dst
}

// MulBatch computes dst = X M^T for a batch X of row vectors: X is
// B x Cols (one observation per row) and dst becomes B x Rows (one
// output per row). dst is reused when it has the right shape, so the
// steady state allocates nothing. Row i of the result is bit-identical
// to MulVec(X row i): every output element is accumulated into a single
// scalar in increasing-k order, the exact rounding chain MulVec uses —
// the batched path may replace the sequential one anywhere without
// perturbing a simulation.
//
// The kernel is register-tiled 4x2 (four batch rows by two output
// neurons, eight live accumulators — sized to stay within the sixteen
// SSE registers; 4x4 spills and measures no faster than the naive
// loop). Each tile streams both weight rows and all four input rows
// once, quartering weight-row traffic versus row-at-a-time MulVec; at
// the 2x32 policy-net sizes used here every operand fits in L1, which
// is all the cache blocking the shapes need.
func (m *Matrix) MulBatch(x, dst *Matrix) *Matrix {
	if x.Cols != m.Cols {
		panic(fmt.Sprintf("nn: MulBatch dimension mismatch: %d cols vs %d input", m.Cols, x.Cols))
	}
	if dst == nil || dst.Rows != x.Rows || dst.Cols != m.Rows || len(dst.Data) != x.Rows*m.Rows {
		dst = NewMatrix(x.Rows, m.Rows)
	}
	b, k, n := x.Rows, m.Cols, m.Rows
	var r int
	for r = 0; r+4 <= b; r += 4 {
		x0 := x.Data[(r+0)*k : (r+0)*k+k]
		x1 := x.Data[(r+1)*k : (r+1)*k+k]
		x2 := x.Data[(r+2)*k : (r+2)*k+k]
		x3 := x.Data[(r+3)*k : (r+3)*k+k]
		var c int
		for c = 0; c+2 <= n; c += 2 {
			w0 := m.Data[(c+0)*k : (c+0)*k+k]
			w1 := m.Data[(c+1)*k : (c+1)*k+k]
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			for j := 0; j < k; j++ {
				a0, a1 := w0[j], w1[j]
				v0, v1, v2, v3 := x0[j], x1[j], x2[j], x3[j]
				s00 += a0 * v0
				s01 += a1 * v0
				s10 += a0 * v1
				s11 += a1 * v1
				s20 += a0 * v2
				s21 += a1 * v2
				s30 += a0 * v3
				s31 += a1 * v3
			}
			dst.Data[(r+0)*n+c], dst.Data[(r+0)*n+c+1] = s00, s01
			dst.Data[(r+1)*n+c], dst.Data[(r+1)*n+c+1] = s10, s11
			dst.Data[(r+2)*n+c], dst.Data[(r+2)*n+c+1] = s20, s21
			dst.Data[(r+3)*n+c], dst.Data[(r+3)*n+c+1] = s30, s31
		}
		for ; c < n; c++ { // odd trailing neuron
			w0 := m.Data[c*k : c*k+k]
			var s0, s1, s2, s3 float64
			for j := 0; j < k; j++ {
				a0 := w0[j]
				s0 += a0 * x0[j]
				s1 += a0 * x1[j]
				s2 += a0 * x2[j]
				s3 += a0 * x3[j]
			}
			dst.Data[(r+0)*n+c] = s0
			dst.Data[(r+1)*n+c] = s1
			dst.Data[(r+2)*n+c] = s2
			dst.Data[(r+3)*n+c] = s3
		}
	}
	for ; r < b; r++ { // trailing batch rows: the sequential loop
		m.MulVec(x.Data[r*k:(r+1)*k], dst.Data[r*n:(r+1)*n])
	}
	return dst
}

// MulVecT computes y = M^T x for a vector x of length Rows; y has length
// Cols.
func (m *Matrix) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("nn: MulVecT dimension mismatch: %d rows vs %d input", m.Rows, len(x)))
	}
	if len(dst) != m.Cols {
		dst = make([]float64, m.Cols)
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		for c := range row {
			dst[c] += row[c] * xr
		}
	}
	return dst
}

// AddOuter accumulates M += a * x y^T (outer product), used for weight
// gradients.
func (m *Matrix) AddOuter(a float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: AddOuter dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ax := a * x[r]
		for c := range row {
			row[c] += ax * y[c]
		}
	}
}
