package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// snapshot is the gob wire format for an MLP.
type snapshot struct {
	Sizes   []int
	Act     Activation
	Weights [][]float64
}

// Save serialises the network's architecture and weights.
func (m *MLP) Save(w io.Writer) error {
	s := snapshot{Sizes: m.Sizes, Act: m.Act}
	for _, p := range m.Params() {
		s.Weights = append(s.Weights, p.Data)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// maxLoadUnits bounds the total parameter count Load will accept
// (1M weights ≈ 8 MB), so a corrupted size header cannot trigger an
// absurd allocation.
const maxLoadUnits = 1 << 20

// Load reconstructs a network saved with Save. The snapshot is fully
// validated before any network is built: the architecture must be a
// sane MLP (≥ 2 layers, positive widths, bounded total size, known
// activation), every weight block must match the shape the architecture
// implies, and every weight must be finite.
func Load(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	m := NewMLP(rand.New(rand.NewSource(0)), s.Act, s.Sizes...)
	params := m.Params()
	for i, p := range params {
		copy(p.Data, s.Weights[i])
	}
	return m, nil
}

// validate rejects snapshots that would panic NewMLP, mismatch the
// declared architecture, or carry non-finite weights.
func (s *snapshot) validate() error {
	if len(s.Sizes) < 2 {
		return fmt.Errorf("architecture needs at least 2 layers, got %d", len(s.Sizes))
	}
	total := 0
	for i, n := range s.Sizes {
		if n <= 0 {
			return fmt.Errorf("layer %d has non-positive width %d", i, n)
		}
		if total += n; total > maxLoadUnits {
			return fmt.Errorf("architecture %v exceeds the size bound", s.Sizes)
		}
	}
	if s.Act != Tanh && s.Act != ReLU && s.Act != TanhApprox {
		return fmt.Errorf("unknown activation %d", s.Act)
	}
	// Params order is W1,b1,W2,b2,...: layer i carries a
	// sizes[i+1]×sizes[i] weight matrix and a sizes[i+1] bias vector.
	nLayers := len(s.Sizes) - 1
	if len(s.Weights) != 2*nLayers {
		return fmt.Errorf("%d weight blocks for %d layers (want %d)", len(s.Weights), nLayers, 2*nLayers)
	}
	for i := 0; i < nLayers; i++ {
		wantW := s.Sizes[i+1] * s.Sizes[i]
		if wantW > maxLoadUnits {
			return fmt.Errorf("layer %d weight matrix %dx%d exceeds the size bound", i, s.Sizes[i+1], s.Sizes[i])
		}
		if got := len(s.Weights[2*i]); got != wantW {
			return fmt.Errorf("layer %d weights have %d values, want %dx%d=%d", i, got, s.Sizes[i+1], s.Sizes[i], wantW)
		}
		if got := len(s.Weights[2*i+1]); got != s.Sizes[i+1] {
			return fmt.Errorf("layer %d biases have %d values, want %d", i, got, s.Sizes[i+1])
		}
	}
	for bi, block := range s.Weights {
		for vi, v := range block {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("block %d value %d is non-finite (%v)", bi, vi, v)
			}
		}
	}
	return nil
}
