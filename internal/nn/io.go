package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// snapshot is the gob wire format for an MLP.
type snapshot struct {
	Sizes   []int
	Act     Activation
	Weights [][]float64
}

// Save serialises the network's architecture and weights.
func (m *MLP) Save(w io.Writer) error {
	s := snapshot{Sizes: m.Sizes, Act: m.Act}
	for _, p := range m.Params() {
		s.Weights = append(s.Weights, p.Data)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load reconstructs a network saved with Save.
func Load(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	m := NewMLP(rand.New(rand.NewSource(0)), s.Act, s.Sizes...)
	params := m.Params()
	if len(params) != len(s.Weights) {
		return nil, fmt.Errorf("nn: load: %d weight blocks for %d params", len(s.Weights), len(params))
	}
	for i, p := range params {
		if len(p.Data) != len(s.Weights[i]) {
			return nil, fmt.Errorf("nn: load: block %d has %d values, want %d", i, len(s.Weights[i]), len(p.Data))
		}
		copy(p.Data, s.Weights[i])
	}
	return m, nil
}
