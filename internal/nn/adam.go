package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	m, v    [][]float64
	t       int
	clipped float64 // gradient clip norm (0 disables)
}

// NewAdam returns an optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// SetClip enables global-norm gradient clipping.
func (a *Adam) SetClip(norm float64) { a.clipped = norm }

// Step applies one update to params given aligned grads, then leaves the
// grads untouched (callers zero them).
func (a *Adam) Step(params, grads []*Matrix) {
	if a.m == nil {
		for _, p := range params {
			a.m = append(a.m, make([]float64, len(p.Data)))
			a.v = append(a.v, make([]float64, len(p.Data)))
		}
	}
	if a.clipped > 0 {
		var norm float64
		for _, g := range grads {
			for _, v := range g.Data {
				norm += v * v
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.clipped {
			scale := a.clipped / norm
			for _, g := range grads {
				for i := range g.Data {
					g.Data[i] *= scale
				}
			}
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range params {
		g := grads[pi]
		m, v := a.m[pi], a.v[pi]
		for i := range p.Data {
			gi := g.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
