package nn

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix fills an r x c matrix with values in [-2, 2).
func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = 4*rng.Float64() - 2
	}
	return m
}

// MulBatch must reproduce MulVec bit-for-bit on every row, across batch
// sizes that exercise the 4-row tile, the 2-neuron tile, and both tails.
func TestMulBatchMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		for _, n := range []int{1, 2, 3, 5, 32} {
			for _, k := range []int{1, 3, 20, 32} {
				w := randMatrix(rng, n, k)
				x := randMatrix(rng, b, k)
				got := w.MulBatch(x, nil)
				if got.Rows != b || got.Cols != n {
					t.Fatalf("B=%d N=%d K=%d: shape %dx%d", b, n, k, got.Rows, got.Cols)
				}
				for r := 0; r < b; r++ {
					want := w.MulVec(x.Data[r*k:(r+1)*k], nil)
					for c := 0; c < n; c++ {
						if got.At(r, c) != want[c] {
							t.Fatalf("B=%d N=%d K=%d row %d col %d: %v != %v",
								b, n, k, r, c, got.At(r, c), want[c])
						}
					}
				}
			}
		}
	}
}

func TestMulBatchReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := randMatrix(rng, 8, 6)
	x := randMatrix(rng, 12, 6)
	dst := NewMatrix(12, 8)
	if got := w.MulBatch(x, dst); got != dst {
		t.Fatal("correctly-shaped dst was not reused")
	}
	allocs := testing.AllocsPerRun(100, func() { w.MulBatch(x, dst) })
	if allocs != 0 {
		t.Fatalf("MulBatch with reused dst allocates %v/op", allocs)
	}
}

// ForwardBatch rows must be bit-identical to sequential Forward calls
// for every activation and for batch sizes covering all tile tails.
func TestForwardBatchMatchesForward(t *testing.T) {
	for _, act := range []Activation{Tanh, ReLU, TanhApprox} {
		for _, sizes := range [][]int{{20, 32, 32, 1}, {5, 7, 3}, {2, 4, 4, 4, 2}} {
			rng := rand.New(rand.NewSource(3))
			m := NewMLP(rng, act, sizes...)
			for _, b := range []int{1, 3, 4, 6, 16, 257} {
				x := randMatrix(rng, b, sizes[0])
				out := m.ForwardBatch(x)
				if out.Rows != b || out.Cols != sizes[len(sizes)-1] {
					t.Fatalf("act=%v sizes=%v B=%d: shape %dx%d", act, sizes, b, out.Rows, out.Cols)
				}
				for r := 0; r < b; r++ {
					want := m.Forward(x.Data[r*sizes[0] : (r+1)*sizes[0]])
					for c := range want {
						if out.At(r, c) != want[c] {
							t.Fatalf("act=%v sizes=%v B=%d row %d out %d: %v != %v",
								act, sizes, b, r, c, out.At(r, c), want[c])
						}
					}
				}
			}
		}
	}
}

// ForwardBatch must leave Forward's backprop caches untouched, so
// interleaving batched inference with training is safe.
func TestForwardBatchPreservesForwardState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, Tanh, 3, 5, 2)
	x := []float64{0.3, -0.2, 0.9}
	m.ZeroGrad()
	m.Forward(x)
	m.Backward([]float64{1, -1})
	want := append([]float64(nil), m.Grads()[0].Data...)

	m2 := NewMLP(rand.New(rand.NewSource(4)), Tanh, 3, 5, 2)
	m2.ZeroGrad()
	m2.Forward(x)
	m2.ForwardBatch(randMatrix(rng, 8, 3)) // interleaved batch work
	m2.Backward([]float64{1, -1})
	for i, g := range m2.Grads()[0].Data {
		if g != want[i] {
			t.Fatalf("grad %d perturbed by ForwardBatch: %v != %v", i, g, want[i])
		}
	}
}

// Once the arena is grown, ForwardBatch is alloc-free at any batch size
// up to the high-water mark.
func TestForwardBatchNoAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, TanhApprox, 20, 32, 32, 1)
	m.EnsureBatch(256)
	for _, b := range []int{256, 16, 1} {
		x := randMatrix(rng, b, 20)
		allocs := testing.AllocsPerRun(50, func() { m.ForwardBatch(x) })
		if allocs != 0 {
			t.Fatalf("ForwardBatch(B=%d) allocates %v/op in steady state", b, allocs)
		}
	}
}

// Regression test for the per-call delta/MulVecT allocations Backward
// used to make: a Forward/Backward training step is now alloc-free.
func TestBackwardNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, Tanh, 20, 32, 32, 1)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	gradOut := []float64{1}
	m.Forward(x)
	m.Backward(gradOut) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		m.Forward(x)
		m.Backward(gradOut)
	})
	if allocs != 0 {
		t.Fatalf("Forward+Backward allocates %v/op", allocs)
	}
}

// TanhApprox must stay within its documented error bound of math.Tanh,
// remain bounded to [-1, 1], and be monotone.
func TestTanhApproxAccuracy(t *testing.T) {
	maxErr, prev := 0.0, -1.1
	for x := -8.0; x <= 8.0; x += 1e-3 {
		y := tanhApprox(x)
		if y < -1 || y > 1 {
			t.Fatalf("tanhApprox(%v) = %v out of [-1, 1]", x, y)
		}
		if y < prev {
			t.Fatalf("tanhApprox not monotone at %v", x)
		}
		prev = y
		if e := math.Abs(y - math.Tanh(x)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-4 {
		t.Fatalf("max |tanhApprox - tanh| = %v, want <= 1e-4", maxErr)
	}
}
