package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// encodeSnapshot builds a gob payload straight from the wire struct so
// tests can craft snapshots Save would never produce.
func encodeSnapshot(t *testing.T, s snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func validSnapshot() snapshot {
	return snapshot{
		Sizes: []int{2, 3, 1},
		Act:   Tanh,
		Weights: [][]float64{
			make([]float64, 6), make([]float64, 3), // W1 (3x2), b1
			make([]float64, 3), make([]float64, 1), // W2 (1x3), b2
		},
	}
}

func TestLoadValidSnapshot(t *testing.T) {
	m, err := Load(bytes.NewReader(encodeSnapshot(t, validSnapshot())))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Forward([]float64{1, 2}); len(got) != 1 {
		t.Fatalf("forward returned %d outputs", len(got))
	}
}

// TestLoadRejectsCorruptSnapshots covers every class of corruption the
// validator must catch: each case must return a descriptive error —
// never panic, never hand back a half-built network.
func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*snapshot)
		errPart string
	}{
		{"too few layers", func(s *snapshot) { s.Sizes = []int{4} }, "at least 2 layers"},
		{"zero width", func(s *snapshot) { s.Sizes[1] = 0 }, "non-positive width"},
		{"negative width", func(s *snapshot) { s.Sizes[0] = -2 }, "non-positive width"},
		{"absurd architecture", func(s *snapshot) { s.Sizes = []int{1 << 20, 1 << 20} }, "size bound"},
		{"unknown activation", func(s *snapshot) { s.Act = Activation(99) }, "unknown activation"},
		{"missing weight block", func(s *snapshot) { s.Weights = s.Weights[:3] }, "weight blocks"},
		{"extra weight block", func(s *snapshot) { s.Weights = append(s.Weights, []float64{1}) }, "weight blocks"},
		{"weight matrix shape", func(s *snapshot) { s.Weights[0] = make([]float64, 5) }, "weights have 5 values"},
		{"bias shape", func(s *snapshot) { s.Weights[1] = make([]float64, 4) }, "biases have 4 values"},
		{"NaN weight", func(s *snapshot) { s.Weights[2][1] = math.NaN() }, "non-finite"},
		{"Inf weight", func(s *snapshot) { s.Weights[0][0] = math.Inf(-1) }, "non-finite"},
		{"oversized weight matrix", func(s *snapshot) {
			s.Sizes = []int{1 << 12, 1 << 12, 1}
			// total widths pass the bound; the 2^24-entry W1 must not.
		}, "size bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSnapshot()
			tc.mutate(&s)
			m, err := Load(bytes.NewReader(encodeSnapshot(t, s)))
			if err == nil {
				t.Fatalf("corrupted snapshot loaded: %+v", m.Sizes)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestLoadShippedModels regression-checks every model the repo ships:
// each must load cleanly, and truncated or bit-flipped copies must fail
// with an error rather than a panic or a silently wrong network.
func TestLoadShippedModels(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.model"))
	if err != nil || len(paths) == 0 {
		t.Skipf("no shipped models found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Load(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("shipped model fails to load: %v", err)
			}
			if len(m.Sizes) < 2 {
				t.Fatalf("degenerate architecture %v", m.Sizes)
			}
			// Truncation at several depths must be detected.
			for _, frac := range []int{2, 4, 10} {
				cut := raw[:len(raw)/frac]
				if _, err := Load(bytes.NewReader(cut)); err == nil {
					t.Fatalf("truncated to 1/%d loaded without error", frac)
				}
			}
			// Bit flips anywhere must never panic (errors are fine, and
			// gob's self-describing framing catches nearly all of them).
			for _, pos := range []int{0, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
				flipped := append([]byte(nil), raw...)
				flipped[pos] ^= 0xff
				Load(bytes.NewReader(flipped)) // must not panic
			}
		})
	}
}
