package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec %v", y)
	}
	yt := m.MulVecT([]float64{1, 1}, nil)
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Fatalf("MulVecT %v", yt)
	}
	m2 := NewMatrix(2, 2)
	m2.AddOuter(2, []float64{1, 2}, []float64{3, 4})
	if m2.At(0, 0) != 6 || m2.At(1, 1) != 16 {
		t.Fatalf("AddOuter %v", m2.Data)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1}, nil)
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, Tanh, 4, 8, 3)
	out := m.Forward([]float64{0.1, -0.2, 0.3, 0.4})
	if len(out) != 3 {
		t.Fatalf("output length %d", len(out))
	}
	if m.NumParams() != 4*8+8+8*3+3 {
		t.Fatalf("param count %d", m.NumParams())
	}
}

// Gradient check: backprop gradients must match finite differences.
// TanhApprox gets a looser bound because its analytic derivative
// (1 - post^2) is itself an approximation of the rational function's
// true slope.
func TestGradientCheck(t *testing.T) {
	for _, act := range []Activation{Tanh, ReLU, TanhApprox} {
		tol := 1e-4
		if act == TanhApprox {
			tol = 2e-3
		}
		rng := rand.New(rand.NewSource(2))
		m := NewMLP(rng, act, 3, 5, 4, 2)
		x := []float64{0.3, -0.7, 0.5}
		target := []float64{0.2, -0.1}

		loss := func() float64 {
			out := m.Forward(x)
			var l float64
			for i := range out {
				d := out[i] - target[i]
				l += 0.5 * d * d
			}
			return l
		}

		// Analytic gradients.
		m.ZeroGrad()
		out := m.Forward(x)
		gradOut := make([]float64, len(out))
		for i := range out {
			gradOut[i] = out[i] - target[i]
		}
		m.Backward(gradOut)

		params := m.Params()
		grads := m.Grads()
		const h = 1e-6
		checked := 0
		for pi, p := range params {
			for i := 0; i < len(p.Data); i += 7 { // sample every 7th weight
				orig := p.Data[i]
				p.Data[i] = orig + h
				lp := loss()
				p.Data[i] = orig - h
				lm := loss()
				p.Data[i] = orig
				numeric := (lp - lm) / (2 * h)
				analytic := grads[pi].Data[i]
				if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
					t.Fatalf("act=%v param %d[%d]: analytic %v vs numeric %v", act, pi, i, analytic, numeric)
				}
				checked++
			}
		}
		if checked < 10 {
			t.Fatalf("only checked %d weights", checked)
		}
	}
}

func TestInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, Tanh, 2, 6, 1)
	x := []float64{0.4, -0.3}
	m.ZeroGrad()
	out := m.Forward(x)
	gin := m.Backward([]float64{1})
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := m.Forward(x)[0]
		x[i] = orig - h
		lm := m.Forward(x)[0]
		x[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-gin[i]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("input grad %d: %v vs %v", i, gin[i], numeric)
		}
	}
	_ = out
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, Tanh, 1, 16, 1)
	opt := NewAdam(0.01)
	// Fit y = sin(3x) on [-1, 1].
	lossAt := func() float64 {
		var l float64
		for x := -1.0; x <= 1; x += 0.1 {
			out := m.Forward([]float64{x})
			d := out[0] - math.Sin(3*x)
			l += d * d
		}
		return l
	}
	before := lossAt()
	for epoch := 0; epoch < 400; epoch++ {
		m.ZeroGrad()
		for x := -1.0; x <= 1; x += 0.1 {
			out := m.Forward([]float64{x})
			m.Backward([]float64{2 * (out[0] - math.Sin(3*x))})
		}
		opt.Step(m.Params(), m.Grads())
	}
	after := lossAt()
	if after > before/10 {
		t.Fatalf("Adam failed to fit: loss %v -> %v", before, after)
	}
}

func TestAdamClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, Tanh, 1, 4, 1)
	opt := NewAdam(0.1)
	opt.SetClip(0.001)
	before := m.Params()[0].Clone()
	m.ZeroGrad()
	m.Forward([]float64{1})
	m.Backward([]float64{1e9}) // exploding gradient
	opt.Step(m.Params(), m.Grads())
	var maxDelta float64
	for i, v := range m.Params()[0].Data {
		d := math.Abs(v - before.Data[i])
		if d > maxDelta {
			maxDelta = d
		}
	}
	// Adam steps are bounded by LR regardless, but clipping should keep
	// the moment estimates finite and the step modest.
	if maxDelta > 0.2 || math.IsNaN(maxDelta) {
		t.Fatalf("clipped step still moved %v", maxDelta)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, Tanh, 3, 7, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	a := append([]float64(nil), m.Forward(x)...)
	b := m2.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded model diverges: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, Tanh, 2, 4, 1)
	c := m.Clone()
	x := []float64{0.5, -0.5}
	a := m.Forward(x)[0]
	if c.Forward(x)[0] != a {
		t.Fatal("clone should match initially")
	}
	m.Params()[0].Data[0] += 1
	if c.Forward(x)[0] != a {
		t.Fatal("clone shares storage with original")
	}
}

// Property: forward pass is deterministic and finite for any input.
func TestQuickForwardFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, Tanh, 4, 8, 2)
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Max(-1e6, math.Min(1e6, v))
		}
		out := m.Forward([]float64{clamp(a), clamp(b), clamp(c), clamp(d)})
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
