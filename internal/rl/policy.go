// Package rl implements Proximal Policy Optimization (Schulman et al.,
// 2017) with a diagonal-Gaussian policy and GAE(lambda) advantages —
// the algorithm the paper trains its RL-based CCA with (Alg. 2).
package rl

import (
	"math"
	"math/rand"

	"libra/internal/nn"
)

const log2Pi = 1.8378770664093453

// GaussianPolicy is a diagonal-Gaussian policy: an MLP produces the
// action mean; a state-independent log-stddev vector is trained
// alongside the network.
type GaussianPolicy struct {
	Actor   *nn.MLP
	LogStd  []float64
	gLogStd []float64
	gMean   []float64 // BackwardLogProb scratch
	rng     *rand.Rand
}

// NewGaussianPolicy builds a policy for obsDim -> actDim with the given
// hidden sizes.
func NewGaussianPolicy(rng *rand.Rand, obsDim, actDim int, hidden []int, initLogStd float64) *GaussianPolicy {
	sizes := append([]int{obsDim}, hidden...)
	sizes = append(sizes, actDim)
	p := &GaussianPolicy{
		// TanhApprox (max error < 1e-4 vs exact tanh) is used for both
		// training and inference, so there is no train/serve skew; it
		// keeps the activation pass from dominating batched inference.
		Actor:   nn.NewMLP(rng, nn.TanhApprox, sizes...),
		LogStd:  make([]float64, actDim),
		gLogStd: make([]float64, actDim),
		gMean:   make([]float64, actDim),
		rng:     rng,
	}
	for i := range p.LogStd {
		p.LogStd[i] = initLogStd
	}
	return p
}

// clone deep-copies the policy's weights with a fresh RNG for action
// sampling; gradients start zeroed.
func (p *GaussianPolicy) clone(rng *rand.Rand) *GaussianPolicy {
	return &GaussianPolicy{
		Actor:   p.Actor.Clone(),
		LogStd:  append([]float64(nil), p.LogStd...),
		gLogStd: make([]float64, len(p.gLogStd)),
		gMean:   make([]float64, len(p.gLogStd)),
		rng:     rng,
	}
}

// Sample draws an action and returns it with its log-probability.
func (p *GaussianPolicy) Sample(obs []float64) (act []float64, logp float64) {
	mean := p.Actor.Forward(obs)
	act = make([]float64, len(mean))
	for i := range mean {
		std := math.Exp(p.LogStd[i])
		act[i] = mean[i] + std*p.rng.NormFloat64()
	}
	return act, p.logProbGiven(mean, act)
}

// Mean returns the deterministic (greedy) action. The returned slice is
// owned by the actor network.
func (p *GaussianPolicy) Mean(obs []float64) []float64 {
	return p.Actor.Forward(obs)
}

// MeanBatch evaluates the greedy action for a batch of observations
// (one per row) through a single forward pass per layer. Row i is
// bit-identical to Mean(row i); the returned matrix is owned by the
// actor network.
func (p *GaussianPolicy) MeanBatch(X *nn.Matrix) *nn.Matrix {
	return p.Actor.ForwardBatch(X)
}

// SampleFrom perturbs an already-computed action mean with seeded
// exploration noise: dst[i] = mean[i] + exp(LogStd[i]) * N(seed, i),
// where the normal draw is a pure function of (seed, i) — see gauss.go.
// dst is reused when correctly sized. Unlike Sample, the result is
// independent of any RNG stream position, so flows sharing this policy
// cannot perturb each other's actions.
func (p *GaussianPolicy) SampleFrom(mean []float64, seed uint64, dst []float64) []float64 {
	if len(dst) != len(mean) {
		dst = make([]float64, len(mean))
	}
	for i := range mean {
		std := math.Exp(p.LogStd[i])
		dst[i] = mean[i] + std*seededNormal(seed, i)
	}
	return dst
}

// SampleSeeded draws a seeded-noise action for obs: Forward + SampleFrom.
func (p *GaussianPolicy) SampleSeeded(obs []float64, seed uint64, dst []float64) []float64 {
	return p.SampleFrom(p.Actor.Forward(obs), seed, dst)
}

// LogProb evaluates log pi(act|obs), running a fresh forward pass (so a
// subsequent backward sees the right cached activations).
func (p *GaussianPolicy) LogProb(obs, act []float64) float64 {
	return p.logProbGiven(p.Actor.Forward(obs), act)
}

func (p *GaussianPolicy) logProbGiven(mean, act []float64) float64 {
	var lp float64
	for i := range mean {
		std := math.Exp(p.LogStd[i])
		z := (act[i] - mean[i]) / std
		lp += -0.5*z*z - p.LogStd[i] - 0.5*log2Pi
	}
	return lp
}

// Entropy returns the policy entropy (state-independent for a diagonal
// Gaussian).
func (p *GaussianPolicy) Entropy() float64 {
	var h float64
	for _, ls := range p.LogStd {
		h += ls + 0.5*(log2Pi+1)
	}
	return h
}

// BackwardLogProb accumulates gradients of (scale * log pi(act|obs))
// into the actor and log-std gradients. It must follow a LogProb call
// for the same (obs, act).
func (p *GaussianPolicy) BackwardLogProb(obs, act []float64, scale float64) {
	mean := p.Actor.Forward(obs)
	gradMean := p.gMean
	for i := range mean {
		std := math.Exp(p.LogStd[i])
		z := (act[i] - mean[i]) / std
		// d logp / d mean = z / std ; d logp / d logstd = z^2 - 1.
		gradMean[i] = scale * z / std
		p.gLogStd[i] += scale * (z*z - 1)
	}
	p.Actor.Backward(gradMean)
}

// BackwardEntropy accumulates the entropy gradient (d H / d logstd = 1).
func (p *GaussianPolicy) BackwardEntropy(scale float64) {
	for i := range p.gLogStd {
		p.gLogStd[i] += scale
	}
}

// ZeroGrad clears all accumulated gradients.
func (p *GaussianPolicy) ZeroGrad() {
	p.Actor.ZeroGrad()
	for i := range p.gLogStd {
		p.gLogStd[i] = 0
	}
}

// Params returns the trainable parameters (actor weights + log-std).
func (p *GaussianPolicy) Params() []*nn.Matrix {
	return append(p.Actor.Params(), &nn.Matrix{Rows: len(p.LogStd), Cols: 1, Data: p.LogStd})
}

// Grads returns gradients aligned with Params.
func (p *GaussianPolicy) Grads() []*nn.Matrix {
	return append(p.Actor.Grads(), &nn.Matrix{Rows: len(p.gLogStd), Cols: 1, Data: p.gLogStd})
}
