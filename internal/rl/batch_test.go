package rl

import (
	"math"
	"math/rand"
	"testing"

	"libra/internal/nn"
)

func randObsMatrix(rng *rand.Rand, b, dim int) *nn.Matrix {
	x := nn.NewMatrix(b, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// ActBatch row r must reproduce ActSeeded(row r) bit-for-bit: action,
// log-probability, and value.
func TestActBatchMatchesActSeeded(t *testing.T) {
	const obsDim, b = 20, 7
	p := NewPPO(1, obsDim, 1, Config{})
	rng := rand.New(rand.NewSource(2))
	X := randObsMatrix(rng, b, obsDim)
	seeds := make([]uint64, b)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	logps := make([]float64, b)
	vals := make([]float64, b)
	acts := p.ActBatch(X, seeds, nil, logps, vals)
	for r := 0; r < b; r++ {
		act, logp, val := p.ActSeeded(X.Data[r*obsDim:(r+1)*obsDim], seeds[r], nil)
		if acts.At(r, 0) != act[0] {
			t.Fatalf("row %d act: %v != %v", r, acts.At(r, 0), act[0])
		}
		if logps[r] != logp {
			t.Fatalf("row %d logp: %v != %v", r, logps[r], logp)
		}
		if vals[r] != val {
			t.Fatalf("row %d val: %v != %v", r, vals[r], val)
		}
	}
}

// A row's result must not depend on which other rows share its batch or
// where in the batch it lands.
func TestActBatchCompositionIndependent(t *testing.T) {
	const obsDim = 20
	p := NewPPO(3, obsDim, 1, Config{})
	rng := rand.New(rand.NewSource(4))
	obs := make([]float64, obsDim)
	for i := range obs {
		obs[i] = rng.NormFloat64()
	}
	const seed = 12345
	eval := func(b, pos int) (float64, float64, float64) {
		X := randObsMatrix(rng, b, obsDim)
		copy(X.Data[pos*obsDim:(pos+1)*obsDim], obs)
		seeds := make([]uint64, b)
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}
		seeds[pos] = seed
		logps := make([]float64, b)
		vals := make([]float64, b)
		acts := p.ActBatch(X, seeds, nil, logps, vals)
		return acts.At(pos, 0), logps[pos], vals[pos]
	}
	act0, logp0, val0 := eval(1, 0)
	for _, c := range []struct{ b, pos int }{{3, 0}, {3, 2}, {16, 7}, {33, 32}} {
		act, logp, val := eval(c.b, c.pos)
		if act != act0 || logp != logp0 || val != val0 {
			t.Fatalf("batch %dx pos %d: (%v %v %v) != solo (%v %v %v)",
				c.b, c.pos, act, logp, val, act0, logp0, val0)
		}
	}
}

func TestMeanBatchMatchesMean(t *testing.T) {
	const obsDim = 12
	p := NewPPO(5, obsDim, 2, Config{})
	rng := rand.New(rand.NewSource(6))
	X := randObsMatrix(rng, 9, obsDim)
	out := p.MeanBatch(X)
	for r := 0; r < X.Rows; r++ {
		want := p.Policy.Mean(X.Data[r*obsDim : (r+1)*obsDim])
		for c := range want {
			if out.At(r, c) != want[c] {
				t.Fatalf("row %d col %d: %v != %v", r, c, out.At(r, c), want[c])
			}
		}
	}
}

// Seeded noise is deterministic per seed and roughly unit-normal
// across seeds.
func TestSeededNormalStatistics(t *testing.T) {
	if seededNormal(42, 0) != seededNormal(42, 0) {
		t.Fatal("seededNormal not deterministic")
	}
	if seededNormal(42, 0) == seededNormal(43, 0) {
		t.Fatal("distinct seeds produced identical noise")
	}
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := seededNormal(uint64(i)*0x9E3779B97F4A7C15, 0)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.05 || std < 0.9 || std > 1.1 {
		t.Fatalf("seeded noise mean %v std %v, want ~N(0,1)", mean, std)
	}
}

// SampleFrom writes into the supplied buffer without allocating.
func TestSampleFromNoAllocs(t *testing.T) {
	p := NewPPO(7, 4, 1, Config{})
	mean := []float64{0.25}
	dst := make([]float64, 1)
	allocs := testing.AllocsPerRun(100, func() { p.Policy.SampleFrom(mean, 99, dst) })
	if allocs != 0 {
		t.Fatalf("SampleFrom allocates %v/op", allocs)
	}
}
