package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestGaussianLogProb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewGaussianPolicy(rng, 2, 1, []int{4}, 0) // std = 1
	obs := []float64{0.1, 0.2}
	mean := append([]float64(nil), p.Mean(obs)...)
	// logp at the mean of a unit Gaussian is -0.5*log(2*pi).
	lp := p.LogProb(obs, mean)
	want := -0.5 * log2Pi
	if math.Abs(lp-want) > 1e-9 {
		t.Fatalf("logp at mean %v, want %v", lp, want)
	}
	// One std away: exponent adds -0.5.
	lp1 := p.LogProb(obs, []float64{mean[0] + 1})
	if math.Abs(lp1-(want-0.5)) > 1e-9 {
		t.Fatalf("logp at mean+sigma %v, want %v", lp1, want-0.5)
	}
}

func TestSampleSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewGaussianPolicy(rng, 1, 1, []int{4}, 0)
	obs := []float64{0.5}
	mean := p.Mean(obs)[0]
	var sum, sq float64
	const n = 2000
	for i := 0; i < n; i++ {
		a, _ := p.Sample(obs)
		sum += a[0]
		sq += (a[0] - mean) * (a[0] - mean)
	}
	if math.Abs(sum/n-mean) > 0.1 {
		t.Fatalf("sample mean %v vs policy mean %v", sum/n, mean)
	}
	if std := math.Sqrt(sq / n); std < 0.8 || std > 1.2 {
		t.Fatalf("sample std %v, want ~1", std)
	}
}

func TestBackwardLogProbGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewGaussianPolicy(rng, 2, 2, []int{5}, -0.3)
	obs := []float64{0.4, -0.2}
	act := []float64{0.7, 0.1}

	p.ZeroGrad()
	p.BackwardLogProb(obs, act, 1)
	grads := p.Grads()
	params := p.Params()

	const h = 1e-6
	for pi, pm := range params {
		for i := 0; i < len(pm.Data); i += 3 {
			orig := pm.Data[i]
			pm.Data[i] = orig + h
			lp := p.LogProb(obs, act)
			pm.Data[i] = orig - h
			lm := p.LogProb(obs, act)
			pm.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grads[pi].Data[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, grads[pi].Data[i], numeric)
			}
		}
	}
}

func TestEntropyIncreasesWithStd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lo := NewGaussianPolicy(rng, 1, 1, []int{4}, -1)
	hi := NewGaussianPolicy(rng, 1, 1, []int{4}, 0)
	if lo.Entropy() >= hi.Entropy() {
		t.Fatal("entropy should grow with log-std")
	}
}

// PPO must learn a contextual bandit: obs s ~ U(-1,1), reward
// -(a - s)^2. The optimal policy outputs a = s.
func TestPPOLearnsContextualBandit(t *testing.T) {
	agent := NewPPO(5, 1, 1, Config{Hidden: []int{16}, ActorLR: 1e-2, CriticLR: 1e-2, MiniBatch: 32})
	rng := rand.New(rand.NewSource(6))

	evalErr := func() float64 {
		var sum float64
		for s := -1.0; s <= 1; s += 0.1 {
			a := agent.Policy.Mean([]float64{s})[0]
			sum += (a - s) * (a - s)
		}
		return sum / 21
	}
	before := evalErr()
	for iter := 0; iter < 60; iter++ {
		for i := 0; i < 128; i++ {
			s := 2*rng.Float64() - 1
			obs := []float64{s}
			act, logp, val := agent.Act(obs)
			rew := -(act[0] - s) * (act[0] - s)
			agent.Store(obs, act, logp, rew, val, true)
		}
		agent.Update(0)
	}
	after := evalErr()
	if after > before/4 || after > 0.1 {
		t.Fatalf("PPO failed to learn: err %v -> %v", before, after)
	}
}

func TestGAEComputation(t *testing.T) {
	agent := NewPPO(7, 1, 1, Config{Gamma: 0.5, Lambda: 1, Epochs: 1, MiniBatch: 8})
	// Two-step episode with known values: check Update consumes the
	// buffer and doesn't blow up; GAE correctness is covered indirectly
	// by the learning test, here we check bookkeeping.
	obs := []float64{0}
	act, logp, val := agent.Act(obs)
	agent.Store(obs, act, logp, 1, val, false)
	act2, logp2, val2 := agent.Act(obs)
	agent.Store(obs, act2, logp2, 1, val2, true)
	st := agent.Update(0)
	if st.Samples != 2 {
		t.Fatalf("update consumed %d samples", st.Samples)
	}
	if agent.BufLen() != 0 {
		t.Fatal("buffer not cleared after update")
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) {
		t.Fatal("NaN losses")
	}
}

func TestUpdateOnEmptyBuffer(t *testing.T) {
	agent := NewPPO(8, 2, 1, Config{})
	st := agent.Update(0)
	if st.Samples != 0 {
		t.Fatal("empty update should be a no-op")
	}
}

func TestRunningNorm(t *testing.T) {
	n := NewRunningNorm(2)
	// Pass-through before enough data.
	out := n.Normalize([]float64{3, 4}, nil)
	if out[0] != 3 || out[1] != 4 {
		t.Fatal("should pass through before 2 observations")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		n.Observe([]float64{5 + 2*rng.NormFloat64(), -3 + 0.5*rng.NormFloat64()})
	}
	z := n.Normalize([]float64{5, -3}, nil)
	if math.Abs(z[0]) > 0.15 || math.Abs(z[1]) > 0.15 {
		t.Fatalf("mean inputs should normalise near zero: %v", z)
	}
	z2 := n.Normalize([]float64{9, -2}, nil)
	if math.Abs(z2[0]-2) > 0.3 || math.Abs(z2[1]-2) > 0.6 {
		t.Fatalf("2-sigma inputs should normalise near 2: %v", z2)
	}
	// Clipping.
	z3 := n.Normalize([]float64{1e9, 0}, nil)
	if z3[0] != 10 {
		t.Fatalf("extreme input should clip to 10, got %v", z3[0])
	}
}

func TestDeterministicBySeed(t *testing.T) {
	mk := func() float64 {
		a := NewPPO(42, 3, 1, Config{})
		obs := []float64{0.1, 0.2, 0.3}
		act, _, _ := a.Act(obs)
		return act[0]
	}
	if mk() != mk() {
		t.Fatal("same seed should give identical behaviour")
	}
}
