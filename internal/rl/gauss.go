package rl

import "math"

// Seeded Gaussian noise for inference-time action sampling. The shared
// math/rand stream a policy clone carries makes each sample depend on
// every draw before it — fine for one flow, but it couples flows that
// share an agent: the noise a flow sees then depends on which other
// flows acted first. Deriving each decision's noise from a per-decision
// seed instead makes every action a pure function of (flow seed,
// decision index, action dim), so batched and sequential evaluation —
// and any batch composition — produce identical actions.

// splitmix64 is the SplitMix64 mixer (Steele et al., 2014): a bijective
// avalanche over 64 bits, the standard way to expand one seed into an
// uncorrelated stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitFrom maps a 64-bit word onto (0, 1], never returning 0 so the
// Box-Muller log stays finite.
func unitFrom(x uint64) float64 {
	return float64(x>>11+1) * (1.0 / (1 << 53))
}

// Mix avalanches x through splitmix64. Callers derive per-decision
// noise seeds with it — Mix(flowBase + decisionIndex) — so the seeds
// handed to SampleFrom are scattered across the 64-bit space and the
// +2i offsets seededNormal applies per action dimension cannot overlap
// between adjacent decisions.
func Mix(x uint64) uint64 { return splitmix64(x) }

// seededNormal returns the i-th unit normal of the stream identified by
// seed, via the Box-Muller transform over two splitmix64 uniforms.
func seededNormal(seed uint64, i int) float64 {
	u1 := unitFrom(splitmix64(seed + uint64(2*i)))
	u2 := unitFrom(splitmix64(seed + uint64(2*i+1)))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
