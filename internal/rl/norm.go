package rl

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// RunningNorm normalises features online with Welford mean/variance
// tracking — the "we also normalize these statistics in our state
// space" step of Sec. 4.2.
type RunningNorm struct {
	n    float64
	mean []float64
	m2   []float64
}

// NewRunningNorm tracks dim features.
func NewRunningNorm(dim int) *RunningNorm {
	return &RunningNorm{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Dim returns the tracked feature width.
func (r *RunningNorm) Dim() int { return len(r.mean) }

// Count returns the number of observations folded in.
func (r *RunningNorm) Count() float64 { return r.n }

// Observe folds one raw feature vector into the statistics.
func (r *RunningNorm) Observe(x []float64) {
	r.n++
	for i := range x {
		d := x[i] - r.mean[i]
		r.mean[i] += d / r.n
		r.m2[i] += d * (x[i] - r.mean[i])
	}
}

// Normalize writes the standardised features into dst (allocating when
// nil) and returns it. Before two observations it passes values through.
func (r *RunningNorm) Normalize(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for i := range x {
		if r.n < 2 {
			dst[i] = x[i]
			continue
		}
		std := math.Sqrt(r.m2[i]/(r.n-1)) + 1e-8
		v := (x[i] - r.mean[i]) / std
		// Clip to keep the network inputs bounded.
		if v > 10 {
			v = 10
		} else if v < -10 {
			v = -10
		}
		dst[i] = v
	}
	return dst
}

// Clone returns an independent copy of the statistics, so concurrent
// flows can keep observing features without sharing state.
func (r *RunningNorm) Clone() *RunningNorm {
	return &RunningNorm{
		n:    r.n,
		mean: append([]float64(nil), r.mean...),
		m2:   append([]float64(nil), r.m2...),
	}
}

// MemBytes estimates the resident bytes of the statistics (the count
// plus two float64 vectors), for shared-deployment memory accounting.
func (r *RunningNorm) MemBytes() int {
	return 8 * (1 + len(r.mean) + len(r.m2))
}

// normState is the gob wire format for RunningNorm.
type normState struct {
	N    float64
	Mean []float64
	M2   []float64
}

// Save serialises the normaliser's statistics.
func (r *RunningNorm) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(&normState{N: r.n, Mean: r.mean, M2: r.m2})
}

// LoadNorm reconstructs a normaliser saved with Save.
func LoadNorm(rd io.Reader) (*RunningNorm, error) {
	var s normState
	if err := gob.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("rl: load norm: %w", err)
	}
	return &RunningNorm{n: s.N, mean: s.Mean, m2: s.M2}, nil
}
