package rl

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"libra/internal/nn"
)

// nnBenchLine is one batch-size measurement in BENCH_nn.json.
type nnBenchLine struct {
	Batch     int     `json:"batch"`
	NsPerInf  float64 `json:"ns_per_inference"`
	InfPerSec float64 `json:"inferences_per_sec"`
}

// seedPPO reconstructs the pre-batching per-flow inference semantics on
// the stock 2x32 nets: exact math.Tanh activations and the full Act
// pass — actor forward, RNG sampling, log-prob, critic forward — every
// decision, allocations included.
func seedPPO() *PPO {
	p := NewPPO(1, 20, 1, Config{})
	rng := rand.New(rand.NewSource(1))
	p.Policy.Actor = nn.NewMLP(rng, nn.Tanh, 20, 32, 32, 1)
	p.Critic = nn.NewMLP(rng, nn.Tanh, 20, 32, 32, 1)
	return p
}

// measureNs times f and returns mean wall-clock nanoseconds per call.
func measureNs(iters int, f func()) float64 {
	f() // warm-up: size arenas, page in code
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// TestBenchNN records the agent-inference perf trajectory into
// BENCH_nn.json: the per-flow baseline (what every evaluation decision
// cost before batching) against the batched evaluation path (one
// actor GEMM per cohort plus seeded noise) at batch 1/16/256. Only
// arms under NN_BENCH / NN_BENCH_GUARD (make bench-nn): timing inside
// a parallel `go test ./...` sweep measures contention, not the
// kernels. The steady-state zero-alloc assertion on the batched path
// always arms when the test runs.
func TestBenchNN(t *testing.T) {
	if os.Getenv("NN_BENCH") == "" && os.Getenv("NN_BENCH_GUARD") == "" {
		t.Skip("set NN_BENCH=1 (make bench-nn) to measure and record inference perf")
	}
	const obsDim = 20
	rng := rand.New(rand.NewSource(3))
	obs := make([]float64, obsDim)
	for i := range obs {
		obs[i] = rng.NormFloat64()
	}

	base := seedPPO()
	perFlowNs := measureNs(200_000, func() { base.Act(obs) })

	cur := NewPPO(2, obsDim, 1, Config{})
	dst := make([]float64, 1)
	var lines []nnBenchLine
	for _, bsz := range []int{1, 16, 256} {
		X := nn.NewMatrix(bsz, obsDim)
		for i := range X.Data {
			X.Data[i] = rng.NormFloat64()
		}
		batchedOnce := func() {
			means := cur.MeanBatch(X)
			for r := 0; r < bsz; r++ {
				cur.Policy.SampleFrom(means.Data[r:r+1], Mix(uint64(r)), dst)
			}
		}
		iters := 500_000 / bsz
		if iters < 2000 {
			iters = 2000
		}
		ns := measureNs(iters, batchedOnce) / float64(bsz)
		lines = append(lines, nnBenchLine{Batch: bsz, NsPerInf: ns, InfPerSec: 1e9 / ns})

		// The steady-state arenas are sized by the warm-up call; after
		// that the whole batched decision path must be allocation-free.
		if allocs := testing.AllocsPerRun(20, batchedOnce); allocs != 0 {
			t.Errorf("batched path allocates %.1f/op at batch %d, want 0", allocs, bsz)
		}
	}

	speedup := perFlowNs / lines[len(lines)-1].NsPerInf
	t.Logf("per-flow: %.0f ns/inference (%.0f inferences/sec)", perFlowNs, 1e9/perFlowNs)
	for _, l := range lines {
		t.Logf("batch %3d: %.0f ns/inference (%.0f inferences/sec)", l.Batch, l.NsPerInf, l.InfPerSec)
	}
	t.Logf("speedup at batch 256: %.2fx", speedup)

	if os.Getenv("NN_BENCH") != "" {
		path := os.Getenv("NN_BENCH_OUT")
		if path == "" {
			path = "../../BENCH_nn.json"
		}
		out := struct {
			PerFlow struct {
				NsPerInf  float64 `json:"ns_per_inference"`
				InfPerSec float64 `json:"inferences_per_sec"`
			} `json:"per_flow"`
			Batch      []nnBenchLine `json:"batch"`
			Speedup256 float64       `json:"speedup_batch256"`
			Note       string        `json:"note"`
		}{Batch: lines, Speedup256: speedup,
			Note: "per_flow = full PPO.Act per decision on exact-tanh 2x32 nets (pre-batching semantics); batch = actor MeanBatch GEMM + seeded noise per row (evaluation path)"}
		out.PerFlow.NsPerInf = perFlowNs
		out.PerFlow.InfPerSec = 1e9 / perFlowNs
		f, err := os.Create(path)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded -> %s", path)
	}
	if os.Getenv("NN_BENCH_GUARD") != "" && speedup < 4.0 {
		t.Errorf("batch-256 speedup %.2fx, floor 4.0x", speedup)
	}
}
