package rl

import (
	"math"
	"math/rand"

	"libra/internal/nn"
)

// Config holds PPO hyperparameters. Zero values select the defaults in
// DefaultConfig.
type Config struct {
	Gamma      float64 // discount
	Lambda     float64 // GAE lambda
	ClipEps    float64 // surrogate clipping epsilon
	ActorLR    float64
	CriticLR   float64
	Epochs     int // optimisation epochs per update
	MiniBatch  int
	EntCoef    float64
	InitLogStd float64
	Hidden     []int
	ClipNorm   float64 // gradient clipping (0 disables)
}

// DefaultConfig mirrors the common stable-baselines PPO defaults the
// paper's implementation builds on.
func DefaultConfig() Config {
	return Config{
		Gamma:      0.99,
		Lambda:     0.95,
		ClipEps:    0.2,
		ActorLR:    3e-4,
		CriticLR:   1e-3,
		Epochs:     6,
		MiniBatch:  64,
		EntCoef:    0.003,
		InitLogStd: -0.5,
		Hidden:     []int{32, 32},
		ClipNorm:   5,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Gamma == 0 {
		c.Gamma = d.Gamma
	}
	if c.Lambda == 0 {
		c.Lambda = d.Lambda
	}
	if c.ClipEps == 0 {
		c.ClipEps = d.ClipEps
	}
	if c.ActorLR == 0 {
		c.ActorLR = d.ActorLR
	}
	if c.CriticLR == 0 {
		c.CriticLR = d.CriticLR
	}
	if c.Epochs == 0 {
		c.Epochs = d.Epochs
	}
	if c.MiniBatch == 0 {
		c.MiniBatch = d.MiniBatch
	}
	if c.EntCoef == 0 {
		c.EntCoef = d.EntCoef
	}
	if c.InitLogStd == 0 {
		c.InitLogStd = d.InitLogStd
	}
	if c.Hidden == nil {
		c.Hidden = d.Hidden
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = d.ClipNorm
	}
	return c
}

// sample is one stored transition.
type sample struct {
	obs  []float64
	act  []float64
	logp float64
	rew  float64
	val  float64
	done bool
}

// PPO is the agent: Gaussian policy + value network + rollout buffer.
type PPO struct {
	Cfg    Config
	Policy *GaussianPolicy
	Critic *nn.MLP

	actOpt *nn.Adam
	crtOpt *nn.Adam
	buf    []sample
	rng    *rand.Rand
}

// NewPPO builds an agent for the given observation/action dimensions.
func NewPPO(seed int64, obsDim, actDim int, cfg Config) *PPO {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	criticSizes := append([]int{obsDim}, cfg.Hidden...)
	criticSizes = append(criticSizes, 1)
	p := &PPO{
		Cfg:    cfg,
		Policy: NewGaussianPolicy(rng, obsDim, actDim, cfg.Hidden, cfg.InitLogStd),
		Critic: nn.NewMLP(rng, nn.TanhApprox, criticSizes...),
		actOpt: nn.NewAdam(cfg.ActorLR),
		crtOpt: nn.NewAdam(cfg.CriticLR),
		rng:    rng,
	}
	p.actOpt.SetClip(cfg.ClipNorm)
	p.crtOpt.SetClip(cfg.ClipNorm)
	return p
}

// Act samples an action for obs and returns it with its log-probability
// and the critic's value estimate.
func (p *PPO) Act(obs []float64) (act []float64, logp, value float64) {
	act, logp = p.Policy.Sample(obs)
	value = p.Critic.Forward(obs)[0]
	return act, logp, value
}

// ActSeeded is Act with per-decision seeded exploration noise instead
// of the shared RNG stream: the action is a pure function of (weights,
// obs, seed), so concurrent flows sharing this agent cannot perturb
// each other. dst is reused for the action when correctly sized.
func (p *PPO) ActSeeded(obs []float64, seed uint64, dst []float64) (act []float64, logp, value float64) {
	mean := p.Policy.Actor.Forward(obs)
	act = p.Policy.SampleFrom(mean, seed, dst)
	logp = p.Policy.logProbGiven(mean, act)
	value = p.Critic.Forward(obs)[0]
	return act, logp, value
}

// MeanBatch evaluates the greedy policy for a batch of observations
// (one per row); row i is bit-identical to Policy.Mean(row i).
func (p *PPO) MeanBatch(X *nn.Matrix) *nn.Matrix {
	return p.Policy.MeanBatch(X)
}

// ActBatch evaluates a batch of observations through one forward pass
// per network and samples row r with seeds[r]. Row r of the result is
// bit-identical to ActSeeded(X row r, seeds[r]): the batched GEMM
// reproduces the sequential accumulation order and the noise depends
// only on the per-row seed, so results are independent of batch
// composition and order. acts is reused when shaped B x actDim; logps
// and vals must have length B.
func (p *PPO) ActBatch(X *nn.Matrix, seeds []uint64, acts *nn.Matrix, logps, vals []float64) *nn.Matrix {
	b := X.Rows
	if len(seeds) != b || len(logps) != b || len(vals) != b {
		panic("rl: ActBatch slice lengths must match X.Rows")
	}
	ad := len(p.Policy.LogStd)
	if acts == nil || acts.Rows != b || acts.Cols != ad {
		acts = nn.NewMatrix(b, ad)
	}
	means := p.Policy.MeanBatch(X)
	for r := 0; r < b; r++ {
		mean := means.Data[r*ad : (r+1)*ad]
		act := p.Policy.SampleFrom(mean, seeds[r], acts.Data[r*ad:(r+1)*ad])
		logps[r] = p.Policy.logProbGiven(mean, act)
	}
	crit := p.Critic.ForwardBatch(X)
	for r := 0; r < b; r++ {
		vals[r] = crit.At(r, 0)
	}
	return acts
}

// Store appends a transition to the rollout buffer.
func (p *PPO) Store(obs, act []float64, logp, rew, val float64, done bool) {
	p.buf = append(p.buf, sample{
		obs:  append([]float64(nil), obs...),
		act:  append([]float64(nil), act...),
		logp: logp,
		rew:  rew,
		val:  val,
		done: done,
	})
}

// BufLen returns the number of stored transitions.
func (p *PPO) BufLen() int { return len(p.buf) }

// UpdateStats summarises one Update call.
type UpdateStats struct {
	Samples     int
	PolicyLoss  float64
	ValueLoss   float64
	MeanAdv     float64
	MeanLogStd  float64
	MeanEntropy float64
}

// Update runs PPO optimisation over the buffered rollout and clears the
// buffer. lastValue bootstraps the final transition when the rollout
// was truncated mid-episode.
func (p *PPO) Update(lastValue float64) UpdateStats {
	n := len(p.buf)
	st := UpdateStats{Samples: n}
	if n == 0 {
		return st
	}
	// GAE(lambda) advantages and returns.
	adv := make([]float64, n)
	ret := make([]float64, n)
	nextVal := lastValue
	nextAdv := 0.0
	for i := n - 1; i >= 0; i-- {
		s := &p.buf[i]
		nv, na := nextVal, nextAdv
		if s.done {
			nv, na = 0, 0
		}
		delta := s.rew + p.Cfg.Gamma*nv - s.val
		adv[i] = delta + p.Cfg.Gamma*p.Cfg.Lambda*na
		ret[i] = adv[i] + s.val
		nextVal, nextAdv = s.val, adv[i]
	}
	// Normalise advantages.
	var mean, sq float64
	for _, a := range adv {
		mean += a
	}
	mean /= float64(n)
	for _, a := range adv {
		d := a - mean
		sq += d * d
	}
	std := math.Sqrt(sq/float64(n)) + 1e-8
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}
	st.MeanAdv = mean

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	for epoch := 0; epoch < p.Cfg.Epochs; epoch++ {
		p.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < n; lo += p.Cfg.MiniBatch {
			hi := lo + p.Cfg.MiniBatch
			if hi > n {
				hi = n
			}
			batch := idx[lo:hi]
			p.Policy.ZeroGrad()
			p.Critic.ZeroGrad()
			inv := 1.0 / float64(len(batch))
			for _, i := range batch {
				s := &p.buf[i]
				// Policy: clipped surrogate.
				newLogp := p.Policy.LogProb(s.obs, s.act)
				ratio := math.Exp(newLogp - s.logp)
				a := adv[i]
				un := ratio * a
				var cl float64
				if a >= 0 {
					cl = (1 + p.Cfg.ClipEps) * a
				} else {
					cl = (1 - p.Cfg.ClipEps) * a
				}
				if un <= cl {
					// Unclipped branch active: d(-un)/dlogp = -a*ratio.
					p.Policy.BackwardLogProb(s.obs, s.act, inv*(-a*ratio))
				}
				st.PolicyLoss += -math.Min(un, cl)
				// Entropy bonus.
				p.Policy.BackwardEntropy(inv * (-p.Cfg.EntCoef))

				// Critic: 0.5 * (v - ret)^2.
				v := p.Critic.Forward(s.obs)[0]
				p.Critic.Backward([]float64{inv * (v - ret[i])})
				st.ValueLoss += 0.5 * (v - ret[i]) * (v - ret[i])
			}
			p.actOpt.Step(p.Policy.Params(), p.Policy.Grads())
			p.crtOpt.Step(p.Critic.Params(), p.Critic.Grads())
		}
	}
	denom := float64(n * p.Cfg.Epochs)
	st.PolicyLoss /= denom
	st.ValueLoss /= denom
	for _, ls := range p.Policy.LogStd {
		st.MeanLogStd += ls
	}
	st.MeanLogStd /= float64(len(p.Policy.LogStd))
	st.MeanEntropy = p.Policy.Entropy()
	p.buf = p.buf[:0]
	return st
}

// Clone returns an independent copy of the agent for concurrent
// inference: policy and critic weights are deep-copied, optimiser
// state and the rollout buffer start fresh, and the sampling RNG is
// reseeded from seed (math/rand sources cannot be copied, so the
// clone's action noise is a deterministic function of seed rather
// than a continuation of the parent's stream).
func (p *PPO) Clone(seed int64) *PPO {
	rng := rand.New(rand.NewSource(seed))
	out := &PPO{
		Cfg:    p.Cfg,
		Policy: p.Policy.clone(rng),
		Critic: p.Critic.Clone(),
		actOpt: nn.NewAdam(p.Cfg.ActorLR),
		crtOpt: nn.NewAdam(p.Cfg.CriticLR),
		rng:    rng,
	}
	out.actOpt.SetClip(p.Cfg.ClipNorm)
	out.crtOpt.SetClip(p.Cfg.ClipNorm)
	return out
}

// MemBytes estimates the resident memory of the agent's models
// (weights in float64), the overhead-accounting input of Fig. 2(c).
func (p *PPO) MemBytes() int {
	return 8 * (p.Policy.Actor.NumParams() + p.Critic.NumParams() + 2*len(p.Policy.LogStd))
}
