GO ?= go

.PHONY: all build vet test race fuzz bench-guard check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry overhead guard: the disabled tracer path must stay under
# 2 ns/op with zero allocations. TestNopTracerBudget measures it with
# testing.Benchmark; the nanosecond assertion only arms when
# TELEMETRY_BENCH_GUARD is set, because it needs this package run in
# isolation (a parallel ./... sweep measures CPU contention instead).
bench-guard:
	TELEMETRY_BENCH_GUARD=1 $(GO) test ./internal/telemetry/ -run TestNopTracerBudget -count=1 -v

# Short fuzz pass over the two parsers that accept external input: the
# Mahimahi trace reader and the FaultPlan JSON decoder.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParseMahimahi -fuzztime=10s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzParsePlan -fuzztime=10s ./internal/netem/faults/

check: vet build race fuzz bench-guard

clean:
	$(GO) clean ./...
