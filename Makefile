GO ?= go

.PHONY: all build vet test race fuzz bench-guard bench-core bench-nn bench-topo bench-sweep bench-lab analyze lab check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry overhead guard: the disabled tracer path must stay under
# 2 ns/op with zero allocations. TestNopTracerBudget measures it with
# testing.Benchmark; the nanosecond assertion only arms when
# TELEMETRY_BENCH_GUARD is set, because it needs this package run in
# isolation (a parallel ./... sweep measures CPU contention instead).
bench-guard:
	TELEMETRY_BENCH_GUARD=1 $(GO) test ./internal/telemetry/ -run TestNopTracerBudget -count=1 -v
	ANALYZE_BENCH_GUARD=1 $(GO) test ./internal/analyze/ -run TestFeedBudget -count=1 -v

# Event-engine hot path: asserts 0 allocs/event and the ns/event budget
# on the pooled-callback scheduling path, then records engine events/sec
# and end-to-end netem packets/sec (plus allocs per event/packet) into
# BENCH_core.json, preserving the recorded pre-rewrite baseline so the
# speedup stays anchored. The flight-recorder guard rides along: its
# always-on ring append must stay 0 allocs and <= 50 ns/event, recorded
# as the "flight" block of the same file. Run in isolation for the same
# reason as bench-guard.
bench-core:
	CORE_BENCH_GUARD=1 $(GO) test ./internal/sim/ -run TestEngineBudget -count=1 -v
	CORE_BENCH=1 CORE_BENCH_GUARD=1 $(GO) test ./internal/netem/ -run TestBenchCore -count=1 -v
	FLIGHT_BENCH_GUARD=1 $(GO) test ./internal/telemetry/ -run TestFlightEmitBudget -count=1 -v
	TIMESERIES_BENCH_GUARD=1 $(GO) test ./internal/telemetry/ -run TestTimeSeriesBudget -count=1 -v

# Agent-inference hot path: the per-flow PPO.Act baseline (exact-tanh
# nets, actor+critic+sampling per decision — the pre-batching
# semantics) against the batched evaluation path (one actor GEMM per
# cohort plus seeded noise) at batch 1/16/256, recorded into
# BENCH_nn.json. The guard enforces the >=4x inferences/sec floor at
# batch 256 and the steady-state zero-alloc invariant on the batched
# path. Run in isolation for the same reason as bench-guard.
bench-nn:
	NN_BENCH=1 NN_BENCH_GUARD=1 $(GO) test ./internal/rl/ -run TestBenchNN -count=1 -v

# Multi-hop hot path: records hop traversals/sec and allocs/packet over
# a 3-hop chain as the "topo" block of BENCH_core.json; the guard
# enforces <1 alloc/packet and a conservative throughput floor. Runs
# after bench-core, which rewrites the file without the extra blocks.
bench-topo:
	TOPO_BENCH=1 TOPO_BENCH_GUARD=1 $(GO) test ./internal/netem/ -run TestBenchTopo -count=1 -v

# Sweep-engine wall-clock: times a fixed classic-CCA suite at
# workers=1 vs workers=GOMAXPROCS and records serial/parallel seconds
# (and the core count) into BENCH_sweep.json. Run in isolation for the
# same reason as bench-guard.
bench-sweep:
	BENCH_SWEEP=1 $(GO) test ./internal/exp/ -run TestBenchSweep -count=1 -v

# Adversarial-lab throughput: scenarios/sec over the sweep pool,
# recorded into BENCH_lab.json; with the guard armed the run fails if
# throughput drops under the conservative floor. Run in isolation for
# the same reason as bench-guard.
bench-lab:
	LAB_BENCH=1 LAB_BENCH_GUARD=1 $(GO) test ./internal/lab/ -run TestBenchLab -count=1 -v

# Short fuzz pass over the parsers that accept external input (the
# Mahimahi trace reader, the FaultPlan JSON decoder, and the TopoSpec
# JSON decoder) and the lab's plan mutation operator (bounds +
# injector safety).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParseMahimahi -fuzztime=10s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzParsePlan -fuzztime=10s ./internal/netem/faults/
	$(GO) test -run=NONE -fuzz=FuzzPlanMutate -fuzztime=10s ./internal/netem/faults/
	$(GO) test -run=NONE -fuzz=FuzzParseTopo -fuzztime=10s ./internal/exp/

# Trace→analytics smoke: record a short two-flow run with -trace-out,
# pipe it through `libra-trace analyze -json`, and assert the report
# parses and covers every flow with completed control cycles.
analyze:
	tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/libra-sim -cca c-libra,c-libra -capacity 24 -dur 5s -seed 7 -trace-out $$tmp/events.jsonl >/dev/null && \
	$(GO) run ./cmd/libra-trace analyze -json $$tmp/events.jsonl | $(GO) run ./scripts/analyzecheck -flows 2 && \
	rm -rf $$tmp

# Robustness-lab smoke: tiny-budget search against one CCA, replay the
# discovered spec (forensic dump attached), then a 2-CCA tournament —
# all deterministic at fixed seeds.
lab:
	tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/libra-lab search -cca cubic -budget 16 -dur 3s -seed 7 -o $$tmp/worst.json -flight-out $$tmp/dumps && \
	$(GO) run ./cmd/libra-lab replay -spec $$tmp/worst.json && \
	$(GO) run ./cmd/libra-lab tournament -cca cubic,bbr -budget 14 -dur 3s -seed 7 && \
	rm -rf $$tmp

check: vet build race fuzz bench-guard bench-core bench-nn bench-topo bench-sweep bench-lab analyze lab

clean:
	$(GO) clean ./...
