package libra

import (
	"testing"
	"time"
)

func TestNewDefaultsToCLibra(t *testing.T) {
	s := New()
	if s.Name() != "c-libra" && s.Name() != "libra" {
		t.Fatalf("default sender name %q", s.Name())
	}
	if New(WithBBR()).Name() != "b-libra" {
		t.Fatal("WithBBR name")
	}
}

func TestQuickstartFlow(t *testing.T) {
	net := NewNetwork(NetworkConfig{
		Capacity: ConstantMbps(24),
		MinRTT:   40 * time.Millisecond,
		Seed:     1,
	})
	f := net.AddFlow(New(WithCubic(), WithSeed(2)), 0, 0)
	net.Run(15 * time.Second)
	if ToMbps(f.Stats.AvgThroughput()) < 24*0.6 {
		t.Fatalf("quickstart throughput %.1f Mbps", ToMbps(f.Stats.AvgThroughput()))
	}
}

func TestBaselinesConstructible(t *testing.T) {
	for _, name := range Baselines() {
		if Baseline(name, 1) == nil {
			t.Fatalf("baseline %s nil", name)
		}
	}
}

func TestUtilityHelpers(t *testing.T) {
	d := DefaultUtility()
	th := ThroughputOriented(2)
	la := LatencyOriented(2)
	if th.Value(50, 0.01, 0) <= d.Value(50, 0.01, 0) {
		t.Fatal("Th-2 should score throughput higher")
	}
	if la.Value(50, 0.01, 0) >= d.Value(50, 0.01, 0) {
		t.Fatal("La-2 should penalise latency more")
	}
	if ThroughputOriented(1).Value(50, 0, 0) >= th.Value(50, 0, 0) {
		t.Fatal("level ordering")
	}
	if LatencyOriented(1).Value(50, 0.01, 0) <= la.Value(50, 0.01, 0) {
		t.Fatal("La level ordering")
	}
}

func TestTraceHelpers(t *testing.T) {
	if ConstantMbps(8).RateAt(time.Hour) != Mbps(8) {
		t.Fatal("constant trace")
	}
	st := StepMbps(time.Second, 1, 2)
	if st.RateAt(1500*time.Millisecond) != Mbps(2) {
		t.Fatal("step trace")
	}
	for _, sc := range []string{"stationary", "walking", "driving"} {
		tr := LTE(sc, 5*time.Second, 3)
		if tr.RateAt(time.Second) <= 0 {
			t.Fatalf("LTE %s trace empty", sc)
		}
	}
	if ToMbps(Mbps(13)) != 13 {
		t.Fatal("unit round trip")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) < 20 {
		t.Fatalf("only %d experiments exposed", len(Experiments()))
	}
	if _, ok := RunExperiment("no-such-id", true, 1); ok {
		t.Fatal("unknown experiment should report !ok")
	}
}

func TestTrainedAgentOption(t *testing.T) {
	opt := TrainLibraAgent(1, 2, 2*time.Second)
	s := New(WithCubic(), opt)
	if s.RL() == nil {
		t.Fatal("trained RL component missing")
	}
}
